package engine

import "quokka/internal/lineage"

// ResultSink receives the output stage's partitions as their tasks commit.
// In-memory execution wires it straight to the head-node collector; in
// process mode the worker's sink is a wire client that relays deliveries to
// the head, which feeds them into the same collector.
//
// Both methods report false under cursor backpressure (the head-node buffer
// is full): the producing task then stays pending and retries, exactly as
// with a failed push. Deliveries are idempotent by task name, so retries
// and recovery replays are harmless.
type ResultSink interface {
	// Deliver offers a payload partition (data may be empty: watermark
	// filler).
	Deliver(t lineage.TaskName, data []byte, epoch int) bool
	// DeliverSpooled offers a manifest: the payload (size bytes) stays
	// spooled on the given worker's flight server.
	DeliverSpooled(t lineage.TaskName, worker int, size int64, epoch int) bool
}

// collectorSink is the in-memory ResultSink: the head-node collector
// itself.
type collectorSink struct{ c *collector }

func (s collectorSink) Deliver(t lineage.TaskName, data []byte, epoch int) bool {
	return s.c.deliver(t, data, epoch)
}

func (s collectorSink) DeliverSpooled(t lineage.TaskName, worker int, size int64, epoch int) bool {
	return s.c.deliverSpooled(t, worker, size, epoch)
}
