package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/trace"
)

// recover implements Algorithm 2 of the paper: reconcile the GCS to a
// consistent state after worker failures. It
//
//  1. raises the GCS barrier and waits for live TaskManagers to quiesce,
//  2. computes the rewind set by walking stages in reverse topological
//     order, scheduling replay tasks for surviving backups, input re-reads
//     for lost reader partitions, and cascading rewinds when a partition
//     is unrecoverable,
//  3. re-places rewound channels — pipeline-parallel (different stages to
//     different workers, Figure 3 bottom) or data-parallel — and resets
//     their cursors, and
//  4. drops the barrier and bumps the global epoch.
//
// The coordinator only ever writes the GCS; it never talks to a
// TaskManager directly, which is what makes nested failures easy to
// handle (§IV-B): if another worker dies mid-recovery, the next pass
// simply reconciles again.
//
// Recovery is agnostic to intra-operator parallelism: a rewound channel's
// operator — partitioned or serial — is rebuilt purely by replaying the
// channel's logged inputs, and partition assignment is a pure function of
// key hash and the query's seeded partition count (the GCS "opp" key), so
// the replacement worker reconstructs the same per-partition state the
// dead worker held.
func (r *Runner) recover(ctx context.Context) error {
	started := time.Now()
	r.recovered++
	r.count(metrics.RecoveryTasks, 1)

	// Raise the barrier.
	gen := r.recovered
	if err := r.gcsUpdate(func(tx *gcs.Txn) error {
		txPutInt(tx, r.keyBarrier(), gen)
		return nil
	}); err != nil {
		return err
	}

	// Wait for every live TaskManager to acknowledge. Workers that die
	// while we wait are simply dropped from the wait set.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		allAcked := true
		err := r.gcsView(func(tx *gcs.Txn) error {
			for _, w := range r.cl.Workers {
				if !w.Alive() {
					continue
				}
				if txGetInt(tx, r.keyAck(int(w.ID)), 0) != gen {
					allAcked = false
					return nil
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if allAcked {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: recovery barrier timed out")
		}
		time.Sleep(200 * time.Microsecond)
	}

	// With the barrier held the coordinator has exclusive access; plan and
	// apply the whole reconciliation in one transaction.
	err := r.gcsUpdate(func(tx *gcs.Txn) error {
		return r.reconcile(tx)
	})
	if err != nil {
		return err
	}

	// Drop the barrier; bump the global epoch so TaskManagers reload
	// placements.
	if err := r.gcsUpdate(func(tx *gcs.Txn) error {
		tx.Delete(r.keyBarrier())
		txPutInt(tx, r.keyGlobalEpoch(), txGetInt(tx, r.keyGlobalEpoch(), 0)+1)
		txPutInt(tx, r.keyRecoveries(), r.recovered)
		return nil
	}); err != nil {
		return err
	}
	r.invalidatePlacement()
	// Manifests pointing at dead workers reference payloads that died with
	// them; drop them so completion detection waits for the rewound output
	// channels to re-execute and re-deliver those partitions.
	alive := make(map[int]bool, len(r.cl.Workers))
	for _, w := range r.cl.Alive() {
		alive[int(w)] = true
	}
	r.collector.invalidateSpooledExcept(alive)
	if r.rec != nil {
		// One span for the whole pass (barrier -> reconcile -> epoch bump),
		// stamped with the recovery generation.
		r.rec.Record(trace.Span{Kind: trace.KindRecovery, Worker: -1, Stage: -1, Channel: -1, Seq: -1,
			Epoch: gen, Start: started, Dur: time.Since(started)})
	}
	if debugRecovery {
		fmt.Printf("[recovery %d] took %v\n", gen, time.Since(started))
	}
	return nil
}

// debugRecovery prints recovery timings; enabled by tests/experiments.
var debugRecovery = false

// reconcile is the body of Algorithm 2, run under the barrier.
func (r *Runner) reconcile(tx *gcs.Txn) error {
	aliveIDs := r.cl.Alive()
	if len(aliveIDs) == 0 {
		return ErrNoWorkers
	}
	aliveSet := make(map[int]bool, len(aliveIDs))
	for _, w := range aliveIDs {
		aliveSet[int(w)] = true
	}

	// A <- all tasks assigned to failed workers; R <- their channels.
	rewind := make(map[lineage.ChannelID]bool)
	for s := range r.plan.Stages {
		for c := 0; c < r.par[s]; c++ {
			id := lineage.ChannelID{Stage: s, Channel: c}
			if !aliveSet[txGetInt(tx, r.keyPlacement(id), -1)] {
				rewind[id] = true
			}
		}
	}

	// Walk stages in reverse topological order (IDs descend: plans list
	// stages topologically), scheduling the inputs each rewound channel
	// will need and cascading rewinds for unrecoverable partitions.
	rrInput := 0 // round-robin cursor for input re-read placement
	for s := len(r.plan.Stages) - 1; s >= 0; s-- {
		stage := r.plan.Stages[s]
		for c := 0; c < r.par[s]; c++ {
			id := lineage.ChannelID{Stage: s, Channel: c}
			if !rewind[id] {
				continue
			}
			// Rewound channels restart from their checkpoint (if any) or
			// from scratch; they need every committed partition of every
			// upstream channel re-delivered.
			for e, in := range stage.Inputs {
				_ = e
				up := in.Stage
				for uc := 0; uc < r.par[up]; uc++ {
					uid := lineage.ChannelID{Stage: up, Channel: uc}
					committed := txGetInt(tx, r.keyCursor(uid), 0)
					for q := 0; q < committed; q++ {
						utask := lineage.TaskName{Stage: up, Channel: uc, Seq: q}
						owner := txGetInt(tx, r.keyPartDir(utask), -1)
						switch {
						case r.cfg.FT == FTSpool && r.spooled[up]:
							// Spooled partitions are durable: fetch them
							// from the object store on any live worker.
							// No cascade — the whole point of spooling.
							w := int(aliveIDs[rrInput%len(aliveIDs)])
							rrInput++
							addReplayDest(tx, r.keyReplay(w, utask), id)
						case r.cfg.FT != FTSpool && aliveSet[owner]:
							// Replay from the owner's local backup — the
							// cheap, common case of Figure 5.
							addReplayDest(tx, r.keyReplay(owner, utask), id)
						case r.plan.Stages[up].Reader != nil:
							// Input task: re-read the lost split anywhere
							// (data-parallel, like Spark, §III-B).
							w := int(aliveIDs[rrInput%len(aliveIDs)])
							rrInput++
							addReplayDest(tx, r.keyInputReplay(w, utask), id)
						default:
							// Backup lost with its worker (or spool mode
							// with an unspooled narrow stage): rewind the
							// producer channel too (Figure 5's (0,2,*)).
							rewind[uid] = true
						}
					}
				}
			}
		}
	}

	// Re-place and reset every rewound channel.
	ids := make([]lineage.ChannelID, 0, len(rewind))
	for id := range rewind {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Stage != ids[j].Stage {
			return ids[i].Stage < ids[j].Stage
		}
		return ids[i].Channel < ids[j].Channel
	})

	// Stage rank assigns rewound channels of different stages to different
	// workers (pipeline-parallel); data-parallel ignores the stage.
	stageRank := make(map[int]int)
	for _, id := range ids {
		if _, ok := stageRank[id.Stage]; !ok {
			stageRank[id.Stage] = len(stageRank)
		}
	}
	for i, id := range ids {
		var w int
		if r.cfg.Recovery == RecoveryPipelineParallel && r.plan.Stages[id.Stage].Reader == nil {
			// Stateful channels: one worker per stage (recovery
			// parallelism tracks pipeline depth, §III-B).
			w = int(aliveIDs[stageRank[id.Stage]%len(aliveIDs)])
		} else {
			// Readers always recover data-parallel; Spark mode spreads
			// everything data-parallel.
			w = int(aliveIDs[i%len(aliveIDs)])
		}
		txPutInt(tx, r.keyPlacement(id), w)
		newCep := txGetInt(tx, r.keyChanEpoch(id), 0) + 1
		txPutInt(tx, r.keyChanEpoch(id), newCep)
		if r.rec != nil {
			// Rewind mark: the channel restarts on worker w under epoch
			// newCep; replayed tasks then carry that epoch in their spans.
			r.rec.Record(trace.Span{Kind: trace.KindRewind, Worker: w,
				Stage: id.Stage, Channel: id.Channel, Seq: -1, Epoch: newCep,
				Start: time.Now()})
		}

		restart := 0
		wm := lineage.Watermark{}
		if r.cfg.FT == FTCheckpoint {
			if v, ok := tx.Get(r.keyCheckpoint(id)); ok {
				if ck, err := decodeCheckpoint(v); err == nil {
					restart = ck.Seq
					wm = ck.WM
				}
			}
		}
		txPutInt(tx, r.keyCursor(id), restart)
		txPutWatermark(tx, r.keyWatermark(id), wm)
		r.count(metrics.RecoveryRewinds, 1)

		// Any partitions this channel had buffered on other live workers
		// remain valid (idempotent re-pushes overwrite them); partitions
		// on the dead worker are gone and will be re-pushed by replays.
	}
	return nil
}

// SetDebugRecovery toggles recovery timing prints (experiments only).
func SetDebugRecovery(v bool) { debugRecovery = v }
