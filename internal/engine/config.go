package engine

import (
	"time"

	"quokka/internal/storage"
)

// ExecutionMode selects pipelined vs stagewise scheduling.
type ExecutionMode uint8

// Execution modes.
const (
	// Pipelined lets a stage consume upstream outputs as soon as their
	// lineage is committed — the paper's dynamic pipelined execution.
	Pipelined ExecutionMode = iota
	// Stagewise blocks a stage until every upstream stage has finished,
	// reproducing SparkSQL's one-stage-at-a-time model (Figure 7 baseline).
	Stagewise
)

func (m ExecutionMode) String() string {
	if m == Stagewise {
		return "stagewise"
	}
	return "pipelined"
}

// FTMode selects the fault-tolerance strategy (Table I of the paper).
type FTMode uint8

// Fault-tolerance modes.
const (
	// FTNone disables intra-query fault tolerance: no lineage log, no
	// backup. A worker failure fails the query (restart baseline).
	FTNone FTMode = iota
	// FTWriteAheadLineage is the paper's contribution: KB-sized lineage
	// records logged to the GCS before outputs are consumable, plus
	// unreliable upstream backup to producer-local disk.
	FTWriteAheadLineage
	// FTSpool durably persists every output partition in the object store
	// (Trino-style). Lineage is still logged so recovery can fetch the
	// right partitions, but rewinds never cascade past the spool.
	FTSpool
	// FTCheckpoint adds periodic operator-state checkpoints to the object
	// store on top of write-ahead lineage (Flink-style, §II-B3).
	FTCheckpoint
)

func (m FTMode) String() string {
	switch m {
	case FTWriteAheadLineage:
		return "write-ahead-lineage"
	case FTSpool:
		return "spool"
	case FTCheckpoint:
		return "checkpoint"
	}
	return "none"
}

// RecoveryMode selects how rewound channels are spread over live workers.
type RecoveryMode uint8

// Recovery modes.
const (
	// RecoveryPipelineParallel assigns rewound channels of different
	// stages to different workers (Quokka, Figure 3 bottom). Parallelism
	// scales with pipeline depth.
	RecoveryPipelineParallel RecoveryMode = iota
	// RecoveryDataParallel spreads rewound channels across workers
	// regardless of stage (Spark, Figure 3 top). Parallelism scales with
	// cluster width; only meaningful for stagewise plans whose channels
	// are independent.
	RecoveryDataParallel
)

func (m RecoveryMode) String() string {
	if m == RecoveryDataParallel {
		return "data-parallel"
	}
	return "pipeline-parallel"
}

// Config controls one query execution.
type Config struct {
	Execution ExecutionMode
	FT        FTMode
	Recovery  RecoveryMode

	// Dynamic task dependencies: a task consumes as many committed
	// upstream outputs as are available (at least MinTake while the
	// producer is still running, at most MaxTake). When Dynamic is false,
	// tasks consume exactly StaticBatch outputs per step (Figure 8's
	// static lineage strategies).
	Dynamic     bool
	StaticBatch int
	MinTake     int
	MaxTake     int

	// SpoolProfile selects where FTSpool persists partitions (S3 or
	// HDFS). Trino's production default is HDFS.
	SpoolProfile storage.Profile

	// ComputeScale scales operator kernel throughput relative to the cost
	// model's vectorised-native baseline. 1 (or 0) is DuckDB/Polars-class;
	// the SparkSQL baseline uses a lower value to model row-at-a-time JVM
	// processing, which is a large part of the paper's Figure 6 gap.
	ComputeScale float64

	// CheckpointEveryTasks snapshots stateful operators every N committed
	// tasks under FTCheckpoint.
	CheckpointEveryTasks int

	// ThreadsPerWorker is the number of executor threads per TaskManager.
	// Threads model in-flight tasks, not cores: modelled I/O waits do not
	// consume CPU. CPUPerWorker bounds concurrently modelled *compute*.
	// Cores are a property of the worker machine, not of a query: the
	// first query executed on a cluster sizes each worker's shared CPU
	// slot pool from its CPUPerWorker, and concurrently running queries
	// share that pool — a later query's differing CPUPerWorker does not
	// resize it. The value only shapes modelled timing, never results.
	ThreadsPerWorker int
	CPUPerWorker     int

	// MemoryBudget caps the accounted operator state bytes per worker
	// (hash join builds, aggregation group tables, sort buffers). 0 means
	// unlimited — the spill subsystem is off entirely and operators run
	// fully in memory, exactly as before. When set, operators whose state
	// would exceed the worker's shared budget spill through the local-disk
	// cost model (Grace-hash partitions for join/agg, external merge runs
	// for sort) and produce byte-identical outputs: spilling never changes
	// task output content or order, which is what keeps write-ahead
	// lineage replay sound without making spill decisions deterministic.
	// Spill partitions come from the TOP bits of the 64-bit key hash and
	// never touch the `hash mod P` routing contract (GCS "opp" key).
	MemoryBudget int64

	// Parallelism is the number of hash partitions each stateful operator
	// (hash join, grouped hash aggregation) splits its state into;
	// partitions build/probe/accumulate concurrently on the worker's CPU
	// slots. 0 derives it from CPUPerWorker. 1 forces the serial operator
	// path. The value is recorded in the GCS at query seed time and must
	// stay fixed across recoveries: partition assignment is a pure function
	// of key hash mod Parallelism, and write-ahead lineage replay relies on
	// rebuilding identical per-partition state.
	Parallelism int

	// CursorBufferBytes bounds the head-node buffer of committed-but-unread
	// output partitions while a streaming Cursor is attached to the query.
	// Deliveries beyond the bound are refused and the producing tasks stay
	// pending, so a slow consumer backpressures the output stage through
	// the normal task-retry machinery. 0 uses DefaultCursorBufferBytes;
	// negative disables the bound. Ignored without a cursor (the one-shot
	// Result path buffers everything, as it must).
	CursorBufferBytes int64

	// LineageFlushInterval controls group-commit of task lineage: instead
	// of one GCS transaction per task commit, each query's commits are
	// batched into a single transaction per flush. 0 (the default) inherits
	// the cluster's WithLineageFlushInterval option, falling back to
	// opportunistic batching — no added latency, commits queued while a
	// flush transaction is in flight fold into the next one. A positive
	// value additionally holds each flush open for that long to widen
	// batches. Negative disables group commit (one transaction per task,
	// the pre-group-commit behaviour). Group commit preserves the
	// commit-before-ack ordering of Algorithm 1 exactly: a task's outputs
	// remain unconsumable until its flush transaction commits, and every
	// batched entry carries its own barrier/epoch fences. Timing-only;
	// never output-visible.
	LineageFlushInterval time.Duration

	// DisableResultSpool turns off worker-side result spooling: final-stage
	// outputs are then pushed to the head node eagerly, as before. With
	// spooling on (the default) only a manifest reaches the head during
	// execution; payloads stay on the producing worker until a cursor pulls
	// them or the query completes. Timing-only; never output-visible.
	DisableResultSpool bool

	// PollInterval is the TaskManager's idle backoff between GCS polls.
	PollInterval time.Duration

	// HeartbeatInterval is how often the coordinator checks worker
	// liveness.
	HeartbeatInterval time.Duration
}

// DefaultConfig returns the paper's Quokka configuration: dynamic
// pipelined execution with write-ahead lineage and pipeline-parallel
// recovery.
func DefaultConfig() Config {
	return Config{
		Execution:            Pipelined,
		FT:                   FTWriteAheadLineage,
		Recovery:             RecoveryPipelineParallel,
		Dynamic:              true,
		MinTake:              8,
		MaxTake:              64,
		StaticBatch:          8,
		SpoolProfile:         storage.ProfileS3,
		CheckpointEveryTasks: 4,
		ThreadsPerWorker:     8,
		CPUPerWorker:         2,
		PollInterval:         200 * time.Microsecond,
		HeartbeatInterval:    2 * time.Millisecond,
	}
}

// SparkConfig returns the SparkSQL stand-in: stagewise execution, lineage
// with upstream backup (Spark's native strategy) and data-parallel
// recovery.
func SparkConfig() Config {
	c := DefaultConfig()
	c.Execution = Stagewise
	c.Recovery = RecoveryDataParallel
	// JVM row-at-a-time processing vs vectorised native kernels: Spark's
	// Tungsten sustains a few hundred MB/s/core on TPC-H operators where
	// DuckDB/Polars sustain closer to a GB/s. This engine-quality gap is
	// part of what Figure 6 measures (the paper itself attributes the 2x
	// to "blocking vs pipelined execution" plus kernel differences).
	c.ComputeScale = 0.35
	return c
}

// TrinoConfig returns the Trino stand-in: pipelined execution with static
// task dependencies and durable spooling to HDFS.
func TrinoConfig() Config {
	c := DefaultConfig()
	c.Dynamic = false
	c.StaticBatch = 8
	c.FT = FTSpool
	c.SpoolProfile = storage.ProfileHDFS
	return c
}
