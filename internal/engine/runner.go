package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
)

// ErrQueryFailed is returned when a worker failure cannot be recovered
// (fault tolerance disabled). Callers may restart the query from scratch —
// the paper's restart baseline.
var ErrQueryFailed = errors.New("engine: query failed due to worker failure (no fault tolerance)")

// ErrNoWorkers is returned when every worker has died.
var ErrNoWorkers = errors.New("engine: all workers failed")

// Report summarizes one query execution.
type Report struct {
	Duration      time.Duration
	Recoveries    int
	TasksExecuted int64
	TasksReplayed int64
	Metrics       map[string]int64
}

// Runner executes one plan on one cluster under one configuration.
type Runner struct {
	cl   *cluster.Cluster
	plan *Plan
	cfg  Config

	spool *storage.ObjectStore // durable target for FTSpool/FTCheckpoint
	met   *metrics.Collector

	out     int    // output stage
	par     []int  // parallelism per stage
	spooled []bool // per stage: FTSpool persists its outputs (wide edges)

	collector *collector
	recovered int
	failCh    chan error

	placeMu sync.RWMutex
	place   map[lineage.ChannelID]int // cached placement
	gep     int
}

// NewRunner validates the plan against the cluster and prepares a runner.
func NewRunner(cl *cluster.Cluster, plan *Plan, cfg Config) (*Runner, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	out, err := plan.OutputStage()
	if err != nil {
		return nil, err
	}
	if cfg.MaxTake <= 0 {
		cfg.MaxTake = 64
	}
	if cfg.MinTake <= 0 {
		cfg.MinTake = 1
	}
	if cfg.MinTake > cfg.MaxTake {
		cfg.MinTake = cfg.MaxTake
	}
	if cfg.ThreadsPerWorker <= 0 {
		cfg.ThreadsPerWorker = 8
	}
	if cfg.CPUPerWorker <= 0 {
		cfg.CPUPerWorker = 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.CPUPerWorker
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if !cfg.Dynamic && cfg.StaticBatch <= 0 {
		return nil, fmt.Errorf("engine: static dependency mode requires StaticBatch > 0")
	}
	r := &Runner{
		cl:    cl,
		plan:  plan,
		cfg:   cfg,
		met:   cl.Metrics,
		out:   out,
		spool: storage.NewObjectStore(cl.Cost, cfg.SpoolProfile, cl.Metrics),
	}
	r.par = make([]int, len(plan.Stages))
	for i := range plan.Stages {
		r.par[i] = plan.Parallelism(i, len(cl.Workers))
	}
	// Spooling persists shuffle partitions: outputs that cross a wide
	// (exchange) edge. Narrow Direct edges are pipeline-fused, as in
	// Trino, and never materialize durably.
	r.spooled = make([]bool, len(plan.Stages))
	for i := range plan.Stages {
		for _, e := range plan.Consumers(i) {
			if e.Part.Kind != PartitionDirect {
				r.spooled[i] = true
			}
		}
	}
	r.collector = newCollector()
	r.place = make(map[lineage.ChannelID]int)
	r.failCh = make(chan error, 1)
	return r, nil
}

// Spool exposes the durable spool store (tests and benches inspect it).
func (r *Runner) Spool() *storage.ObjectStore { return r.spool }

// Run executes the query to completion, returning the concatenated output
// and a report. It blocks until the query finishes, fails, or ctx is
// cancelled.
func (r *Runner) Run(ctx context.Context) (*batch.Batch, *Report, error) {
	start := time.Now()
	if err := r.seed(); err != nil {
		return nil, nil, err
	}
	// Per-query spill files must not outlive the query — on ANY exit path
	// (success, failure, cancellation). Seed also sweeps, covering a
	// cluster whose previous query died without running deferred cleanup.
	defer r.sweepSpill()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for _, w := range r.cl.Workers {
		if !w.Alive() {
			continue
		}
		t := newTaskManager(r, w)
		for i := 0; i < r.cfg.ThreadsPerWorker; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				t.loop(ctx)
			}()
		}
	}

	err := r.coordinate(ctx)
	cancel()
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}

	result, err := r.assembleResult()
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Duration:      time.Since(start),
		Recoveries:    r.recovered,
		TasksExecuted: r.met.Get(metrics.TasksExecuted),
		TasksReplayed: r.met.Get(metrics.TasksReplayed),
		Metrics:       r.met.Snapshot(),
	}
	return result, rep, nil
}

// sweepSpill deletes every spill run file from the live workers' disks.
// Run at seed time (a reused cluster must not inherit a failed query's
// files) and at query completion (the no-leak guarantee tests assert on).
func (r *Runner) sweepSpill() {
	for _, w := range r.cl.Workers {
		if w.Alive() {
			w.Disk.DeletePrefix("spill/")
		}
	}
}

// seed writes the initial execution state into the GCS: placement of every
// channel, zero cursors and epochs. Channel c of every stage starts on
// worker c mod W, so each worker hosts one channel of each data-parallel
// stage, as in §IV-A.
func (r *Runner) seed() error {
	alive := r.cl.Alive()
	if len(alive) == 0 {
		return ErrNoWorkers
	}
	r.sweepSpill()
	return r.cl.GCS.Update(func(tx *gcs.Txn) error {
		// Purge any previous query's execution state: the GCS outlives
		// queries (it is the cluster's control store), but lineage and
		// cursors are per-query.
		for _, prefix := range []string{
			"lin/", "cur/", "wm/", "done/", "pd/", "pl/", "cep/",
			"rp/", "rpi/", "ck/", "ack/",
		} {
			for _, k := range tx.List(prefix) {
				tx.Delete(k)
			}
		}
		tx.Delete(keyBarrier())
		for s := range r.plan.Stages {
			for c := 0; c < r.par[s]; c++ {
				id := lineage.ChannelID{Stage: s, Channel: c}
				w := alive[c%len(alive)]
				txPutInt(tx, keyPlacement(id), int(w))
				txPutInt(tx, keyCursor(id), 0)
				txPutInt(tx, keyChanEpoch(id), 0)
			}
		}
		// Record the operator partition count: every TaskManager — including
		// ones that replay lineage onto fresh workers after a failure — must
		// split stateful operator state into the same hash partitions, or
		// replayed state would not match what the dead worker had built.
		txPutInt(tx, keyOpParallelism(), r.cfg.Parallelism)
		txPutInt(tx, keyGlobalEpoch(), txGetInt(tx, keyGlobalEpoch(), 0)+1)
		return nil
	})
}

// coordinate is the head-node loop: it watches worker liveness, triggers
// recovery, and detects query completion.
func (r *Runner) coordinate(ctx context.Context) error {
	aliveBefore := r.cl.AliveCount()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-r.failCh:
			return err
		case <-ticker.C:
		}
		aliveNow := r.cl.AliveCount()
		if aliveNow == 0 {
			return ErrNoWorkers
		}
		if aliveNow < aliveBefore {
			if r.cfg.FT == FTNone {
				return ErrQueryFailed
			}
			if err := r.recover(ctx); err != nil {
				return err
			}
			aliveBefore = aliveNow
			continue
		}
		done, err := r.queryDone()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// queryDone reports whether every output-stage channel has finished and
// the collector holds all of their partitions.
func (r *Runner) queryDone() (bool, error) {
	counts := make([]int, r.par[r.out])
	complete := true
	err := r.cl.GCS.View(func(tx *gcs.Txn) error {
		for c := 0; c < r.par[r.out]; c++ {
			id := lineage.ChannelID{Stage: r.out, Channel: c}
			n := txGetInt(tx, keyDone(id), -1)
			if n < 0 {
				complete = false
				return nil
			}
			counts[c] = n
		}
		return nil
	})
	if err != nil || !complete {
		return false, err
	}
	for c := 0; c < r.par[r.out]; c++ {
		for q := 0; q < counts[c]; q++ {
			if !r.collector.has(lineage.TaskName{Stage: r.out, Channel: c, Seq: q}) {
				return false, nil
			}
		}
	}
	return true, nil
}

// assembleResult decodes and concatenates the collected output partitions
// in (channel, seq) order.
func (r *Runner) assembleResult() (*batch.Batch, error) {
	parts := r.collector.snapshot()
	names := make([]lineage.TaskName, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Channel != names[j].Channel {
			return names[i].Channel < names[j].Channel
		}
		return names[i].Seq < names[j].Seq
	})
	var batches []*batch.Batch
	for _, n := range names {
		data := parts[n]
		if len(data) == 0 {
			continue
		}
		b, err := batch.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("engine: corrupt result partition %s: %w", n, err)
		}
		if b.NumRows() > 0 {
			batches = append(batches, b)
		}
	}
	return batch.Concat(batches)
}

// placement returns the worker currently hosting a channel, from a cache
// refreshed whenever the global epoch changes.
func (r *Runner) placement(id lineage.ChannelID) (int, error) {
	r.placeMu.RLock()
	w, ok := r.place[id]
	r.placeMu.RUnlock()
	if ok {
		return w, nil
	}
	var got int
	err := r.cl.GCS.View(func(tx *gcs.Txn) error {
		got = txGetInt(tx, keyPlacement(id), -1)
		return nil
	})
	if err != nil {
		return -1, err
	}
	if got < 0 {
		return -1, fmt.Errorf("engine: no placement for channel %s", id)
	}
	r.placeMu.Lock()
	r.place[id] = got
	r.placeMu.Unlock()
	return got, nil
}

// reportFailure surfaces a fatal task error (bad plan, corrupt data) to
// the coordinator, failing the query instead of retrying forever.
// Transient conditions (dead consumers, missing replays) are never
// reported here.
func (r *Runner) reportFailure(err error) {
	select {
	case r.failCh <- err:
	default:
	}
}

// invalidatePlacement clears the placement cache (after recovery).
func (r *Runner) invalidatePlacement() {
	r.placeMu.Lock()
	r.place = make(map[lineage.ChannelID]int)
	r.placeMu.Unlock()
}

// collector receives the output stage's partitions on the head node. It
// deduplicates retransmissions by task name, so recovery replays are
// harmless.
type collector struct {
	mu    sync.Mutex
	parts map[lineage.TaskName][]byte
}

func newCollector() *collector {
	return &collector{parts: make(map[lineage.TaskName][]byte)}
}

func (c *collector) deliver(t lineage.TaskName, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.parts[t] = data
}

func (c *collector) has(t lineage.TaskName) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.parts[t]
	return ok
}

func (c *collector) snapshot() map[lineage.TaskName][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[lineage.TaskName][]byte, len(c.parts))
	for k, v := range c.parts {
		out[k] = v
	}
	return out
}
