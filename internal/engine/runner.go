package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
	"quokka/internal/trace"
)

// ErrQueryFailed is returned when a worker failure cannot be recovered
// (fault tolerance disabled). Callers may restart the query from scratch —
// the paper's restart baseline.
var ErrQueryFailed = errors.New("engine: query failed due to worker failure (no fault tolerance)")

// ErrNoWorkers is returned when every worker has died.
var ErrNoWorkers = errors.New("engine: all workers failed")

// Report summarizes one query execution. All counters are per query, even
// when other queries ran concurrently on the same cluster: the runner
// counts its own events into a private collector alongside the cluster's.
type Report struct {
	QueryID       string
	Duration      time.Duration
	Recoveries    int
	TasksExecuted int64
	TasksReplayed int64
	Metrics       map[string]int64
	// Histograms snapshots the query's latency distributions (task latency,
	// admission wait, flush latency, cursor stall — see the metrics.*NS
	// names). Always populated; histograms are cheap enough to stay on.
	Histograms map[string]metrics.HistogramSnapshot
	// Stages carries per-stage actuals aggregated from the flight recorder;
	// nil unless the query ran with tracing enabled (WithTracing).
	Stages []StageStats
}

// Runner executes one plan on one cluster under one configuration. Any
// number of runners may execute concurrently on one cluster: every piece
// of a runner's state — GCS keys, flight mailbox slots, upstream backups,
// spill namespaces, metrics — is namespaced by its query id, and the
// cluster's admission controller bounds how many run at once.
type Runner struct {
	cl     *cluster.Cluster
	plan   *Plan
	cfg    Config
	qid    string         // cluster-unique query id; prefixes all per-query state
	shared *clusterShared // per-cluster admission + worker resource pools

	spool *storage.ObjectStore // durable target for FTSpool/FTCheckpoint
	met   *metrics.Collector   // cluster-wide collector
	qmet  *metrics.Collector   // per-query collector (feeds the Report)
	tee   *metrics.Collector   // write-only fan-out to both of the above

	out     int    // output stage
	par     []int  // parallelism per stage
	spooled []bool // per stage: FTSpool persists its outputs (wide edges)

	collector *collector
	// sink receives the output stage's partitions from this runner's task
	// managers: the collector itself in-memory, a wire client to the head
	// inside a worker process.
	sink      ResultSink
	recovered int
	failCh    chan error

	// cursorLimit is the resolved head-node buffer bound for a streaming
	// cursor (Config.CursorBufferBytes, falling back to the cluster's
	// WithCursorBufferBytes default; 0 = unbounded).
	cursorLimit int64
	// flushEvery is the resolved lineage group-commit policy
	// (Config.LineageFlushInterval falling back to the cluster default):
	// 0 = opportunistic batching, >0 = bounded hold, <0 = disabled.
	flushEvery time.Duration
	// gc batches this query's task commits into shared GCS transactions.
	// Set before the task managers start and stopped after they exit; nil
	// when group commit is disabled.
	gc *groupCommitter
	// shuffleCompress / spillCompress are the resolved byte-codec choices
	// (cluster-level WithShuffleCompression / WithSpillCompression flags,
	// frozen at NewRunner so one query never mixes policies mid-flight —
	// decode is self-describing, but metrics should mean one thing).
	shuffleCompress bool
	spillCompress   bool
	// rec is the query's flight recorder, nil unless the cluster ran with
	// WithTracing(true) at submit time. Per-query like every other piece of
	// runner state; a nil recorder makes every span site a no-op.
	rec *trace.Recorder
	// Pre-resolved histogram pairs (per-query + cluster-wide): hot paths
	// observe into both handles directly, skipping the collector's
	// name-to-histogram map lookup — and its mutex — per event.
	hTask  histPair
	hAdmit histPair
	hFlush histPair
	hStall histPair

	placeMu sync.RWMutex
	place   map[lineage.ChannelID]int // cached placement
	gep     int

	// keys is the prebuilt per-channel GCS key table (read-only after
	// NewRunner; see buildKeys).
	keys map[lineage.ChannelID]*chanKeys

	// snap caches each poll round's GCS reads (barrier/epoch/recovery
	// counters plus every channel's coordination meta), stamped with the
	// namespace's shard version. It is shared by ALL of this query's task
	// managers: while nothing in the query's namespace changes, every
	// executor thread on every worker reuses one snapshot and issues zero
	// GCS transactions, and each committed write triggers exactly one
	// refetch per worker-channel subset — not one per worker per thread.
	snapMu    sync.Mutex
	snapVer   uint64
	snapValid bool
	snapBar   int
	snapGep   int
	snapRecn  int
	snapMetas map[lineage.ChannelID]*chanMeta
}

// histPair tees one latency histogram the way counters are teed: every
// observation lands in the query's private collector and the cluster-wide
// one. Resolved once at NewRunner; Observe is two lock-free atomic updates.
type histPair struct {
	q, c *metrics.Histogram
}

func (h histPair) observe(v int64) {
	h.q.Observe(v)
	h.c.Observe(v)
}

// pollHeader returns the poll round's barrier / global epoch / recovery
// generation from the shared version-stamped snapshot, refetching (one
// GCS view) only when the query's namespace changed since it was taken.
func (r *Runner) pollHeader(ver uint64) (bar, gep, recn int) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if !r.snapValid || r.snapVer != ver {
		r.gcsView(func(tx *gcs.Txn) error {
			r.snapBar = txGetInt(tx, r.keyBarrier(), 0)
			r.snapGep = txGetInt(tx, r.keyGlobalEpoch(), 0)
			r.snapRecn = txGetInt(tx, r.keyRecoveries(), 0)
			return nil
		})
		r.snapMetas = nil
		r.snapVer, r.snapValid = ver, true
	}
	return r.snapBar, r.snapGep, r.snapRecn
}

// NewRunner validates the plan against the cluster and prepares a runner.
func NewRunner(cl *cluster.Cluster, plan *Plan, cfg Config) (*Runner, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	out, err := plan.OutputStage()
	if err != nil {
		return nil, err
	}
	if cfg.MaxTake <= 0 {
		cfg.MaxTake = 64
	}
	if cfg.MinTake <= 0 {
		cfg.MinTake = 1
	}
	if cfg.MinTake > cfg.MaxTake {
		cfg.MinTake = cfg.MaxTake
	}
	if cfg.ThreadsPerWorker <= 0 {
		cfg.ThreadsPerWorker = 8
	}
	if cfg.CPUPerWorker <= 0 {
		cfg.CPUPerWorker = 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.CPUPerWorker
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if !cfg.Dynamic && cfg.StaticBatch <= 0 {
		return nil, fmt.Errorf("engine: static dependency mode requires StaticBatch > 0")
	}
	shared := sharedFor(cl)
	qmet := &metrics.Collector{}
	r := &Runner{
		cl:     cl,
		plan:   plan,
		cfg:    cfg,
		qid:    shared.newQueryID(),
		shared: shared,
		met:    cl.Metrics,
		qmet:   qmet,
		tee:    metrics.Tee(cl.Metrics, qmet),
		out:    out,
		spool:  storage.NewObjectStore(cl.Cost, cfg.SpoolProfile, cl.Metrics),
	}
	r.par = make([]int, len(plan.Stages))
	for i := range plan.Stages {
		r.par[i] = plan.Parallelism(i, len(cl.Workers))
	}
	// Spooling persists shuffle partitions: outputs that cross a wide
	// (exchange) edge. Narrow Direct edges are pipeline-fused, as in
	// Trino, and never materialize durably.
	r.spooled = make([]bool, len(plan.Stages))
	for i := range plan.Stages {
		for _, e := range plan.Consumers(i) {
			if e.Part.Kind != PartitionDirect {
				r.spooled[i] = true
			}
		}
	}
	r.collector = newCollector(out, r.par[out])
	r.sink = collectorSink{r.collector}
	r.buildKeys()
	r.place = make(map[lineage.ChannelID]int)
	r.failCh = make(chan error, 1)
	r.cursorLimit = shared.cursorBufferFor(cfg.CursorBufferBytes)
	r.flushEvery = shared.flushIntervalFor(cfg.LineageFlushInterval)
	r.shuffleCompress = shared.shuffleCompressionFor()
	r.spillCompress = shared.spillCompressionFor()
	if shared.tracingFor() {
		names := make([]string, len(plan.Stages))
		for i, st := range plan.Stages {
			names[i] = st.Name
		}
		r.rec = trace.New(len(cl.Workers), 0, names)
	}
	r.hTask = histPair{qmet.Hist(metrics.TaskLatencyNS), cl.Metrics.Hist(metrics.TaskLatencyNS)}
	r.hAdmit = histPair{qmet.Hist(metrics.AdmissionWaitNS), cl.Metrics.Hist(metrics.AdmissionWaitNS)}
	r.hFlush = histPair{qmet.Hist(metrics.FlushLatencyNS), cl.Metrics.Hist(metrics.FlushLatencyNS)}
	r.hStall = histPair{qmet.Hist(metrics.CursorStallNS), cl.Metrics.Hist(metrics.CursorStallNS)}
	// Credit the planner's zone-map pruning to this query's report: the
	// splits the reader stages will never even schedule.
	for _, st := range plan.Stages {
		if st.Reader != nil && st.Reader.Splits != nil && st.Reader.TotalSplits > 0 {
			if pruned := st.Reader.TotalSplits - len(st.Reader.Splits); pruned > 0 {
				r.count(metrics.ScanSplitsPruned, int64(pruned))
			}
		}
	}
	return r, nil
}

// QueryID returns the runner's cluster-unique query id.
func (r *Runner) QueryID() string { return r.qid }

// Spool exposes the durable spool store (tests and benches inspect it).
func (r *Runner) Spool() *storage.ObjectStore { return r.spool }

// count records an engine event into both the cluster-wide collector and
// this query's private collector.
func (r *Runner) count(name string, delta int64) {
	r.met.Add(name, delta)
	r.qmet.Add(name, delta)
}

// gcsUpdate runs a read-write GCS transaction and attributes its traffic
// to this query: every engine transaction touches only the query's own
// namespace, so the attribution is exact. The store keeps counting the
// cluster totals itself.
func (r *Runner) gcsUpdate(fn func(tx *gcs.Txn) error) error {
	var bytes int64
	err := r.cl.GCS.UpdateNS(r.keyNS(), func(tx *gcs.Txn) error {
		if err := fn(tx); err != nil {
			return err
		}
		bytes = tx.WriteBytes()
		return nil
	})
	if err == nil {
		r.qmet.Add(metrics.GCSTxns, 1)
		r.qmet.Add(metrics.GCSBytes, bytes)
	}
	return err
}

// gcsVersion is the commit counter of this query's GCS namespace — a local
// atomic read, not a modelled round trip. Pollers compare it across rounds
// to skip view transactions while the namespace is unchanged.
func (r *Runner) gcsVersion() uint64 {
	return r.cl.GCS.VersionNS(r.keyNS())
}

// gcsView runs a read-only GCS transaction, counted into the per-query
// transaction total (views carry no payload).
func (r *Runner) gcsView(fn func(tx *gcs.Txn) error) error {
	err := r.cl.GCS.ViewNS(r.keyNS(), fn)
	if err == nil {
		r.qmet.Add(metrics.GCSTxns, 1)
	}
	return err
}

// Run executes the query to completion, returning the concatenated output
// and a report. It blocks until the query finishes, fails, or ctx is
// cancelled. Run is sugar over Start + Query.Result — every caller that
// wants concurrent queries, streaming output or cancellation handles uses
// Start directly.
func (r *Runner) Run(ctx context.Context) (*batch.Batch, *Report, error) {
	return r.Start(ctx).Result()
}

// execute is the query lifecycle: admission, seed, task managers,
// coordination, teardown. It runs on the Query's goroutine and returns the
// terminal error (nil on success). Teardown happens on EVERY exit path —
// including cancellation and failure — and only after all of this query's
// task-manager threads have stopped, so a torn-down query leaves no spill
// files, mailbox slots, disk backups or GCS keys behind, without
// disturbing concurrent queries.
func (r *Runner) execute(ctx context.Context) error {
	admitStart := time.Now()
	if err := r.shared.admit.acquire(ctx); err != nil {
		return err
	}
	defer r.shared.admit.release()
	wait := time.Since(admitStart)
	r.hAdmit.observe(int64(wait))
	if r.rec != nil {
		r.rec.Record(trace.Span{Kind: trace.KindAdmission, Worker: -1, Stage: -1, Channel: -1, Seq: -1,
			Start: admitStart, Dur: wait})
	}
	if err := r.seed(); err != nil {
		r.cleanup()
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	var stopRemote func()
	if rx := r.shared.remoteExecFor(); rx != nil {
		// Process mode: the task managers run inside worker processes,
		// which commit against the head's wire-served GCS. The head keeps
		// coordination, recovery, the collector and teardown. Each worker
		// process runs its own group committer; the head-side one would
		// have no clients.
		if r.cfg.FT != FTNone && r.cfg.FT != FTWriteAheadLineage {
			r.cleanup()
			return fmt.Errorf("engine: process mode supports FTNone and FTWriteAheadLineage only")
		}
		stop, err := rx.StartQuery(r)
		if err != nil {
			r.cleanup()
			return err
		}
		stopRemote = stop
	} else {
		// The group committer must outlive every task-manager thread:
		// threads block inside finishTask until their flush resolves, so it
		// is acquired before they start and released only after wg.Wait.
		// The committer itself is cluster-shared — commits fold across every
		// admitted query — and refcounted by clusterShared.
		if r.flushEvery >= 0 {
			r.gc = r.shared.committer(r.cl.GCS)
		}
		for _, w := range r.cl.Workers {
			if !w.Alive() {
				continue
			}
			t := newTaskManager(r, w)
			for i := 0; i < r.cfg.ThreadsPerWorker; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					t.loop(ctx)
				}()
			}
		}
	}

	err := r.coordinate(ctx)
	cancel()
	wg.Wait()
	if stopRemote != nil {
		// Synchronous: workers must have stopped before cleanup deletes the
		// query's namespace, or a straggler commit would re-create keys
		// behind the sweep.
		stopRemote()
	}
	if r.gc != nil {
		r.shared.committerDone()
		r.gc = nil
	}
	r.cleanup()
	return err
}

// sweepSpill deletes every spill run file of THIS query from the live
// workers' disks. Run at seed time (defensive: query ids are unique, so
// the namespace should be empty) and at query teardown on every exit path
// — completion, failure and cancellation — which is the no-leak guarantee
// the tests assert on. Other queries' spill namespaces are untouched.
func (r *Runner) sweepSpill() {
	for _, w := range r.cl.Workers {
		if w.Alive() {
			w.Disk.DeletePrefix(spillQueryPrefix(r.qid))
		}
	}
}

// cleanup tears down every trace of the query outside the head node: spill
// namespaces, flight mailbox slots, upstream backups, and the query's
// whole GCS namespace. Must only run after the query's task managers have
// stopped (they would otherwise re-create state behind the sweep).
func (r *Runner) cleanup() {
	r.sweepSpill()
	for _, w := range r.cl.Workers {
		if !w.Alive() {
			continue
		}
		w.Flight.DropQuery(r.qid)
		w.Disk.DeletePrefix(backupQueryPrefix(r.qid))
	}
	ns := r.keyNS()
	r.gcsUpdate(func(tx *gcs.Txn) error {
		for _, k := range tx.List(ns) {
			tx.Delete(k)
		}
		return nil
	})
}

// seed writes the initial execution state into the query's GCS namespace:
// placement of every channel, zero cursors and epochs. Channel c of every
// stage starts on worker c mod W, so each worker hosts one channel of each
// data-parallel stage, as in §IV-A. Nothing outside q/<qid>/ is touched —
// concurrent queries' state is invisible from here.
func (r *Runner) seed() error {
	alive := r.cl.Alive()
	if len(alive) == 0 {
		return ErrNoWorkers
	}
	r.sweepSpill()
	return r.gcsUpdate(func(tx *gcs.Txn) error {
		for s := range r.plan.Stages {
			for c := 0; c < r.par[s]; c++ {
				id := lineage.ChannelID{Stage: s, Channel: c}
				w := alive[c%len(alive)]
				txPutInt(tx, r.keyPlacement(id), int(w))
				txPutInt(tx, r.keyCursor(id), 0)
				txPutInt(tx, r.keyChanEpoch(id), 0)
			}
		}
		// Record the operator partition count: every TaskManager — including
		// ones that replay lineage onto fresh workers after a failure — must
		// split stateful operator state into the same hash partitions, or
		// replayed state would not match what the dead worker had built.
		txPutInt(tx, r.keyOpParallelism(), r.cfg.Parallelism)
		txPutInt(tx, r.keyGlobalEpoch(), 1)
		return nil
	})
}

// coordinate is the head-node loop: it watches worker liveness, triggers
// recovery, and detects query completion. Each in-flight query runs its
// own coordinator; a worker failure makes every one of them replay its own
// lineage independently.
func (r *Runner) coordinate(ctx context.Context) error {
	aliveBefore := r.cl.AliveCount()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-r.failCh:
			return err
		case <-ticker.C:
		}
		aliveNow := r.cl.AliveCount()
		if aliveNow == 0 {
			return ErrNoWorkers
		}
		if aliveNow < aliveBefore {
			if r.cfg.FT == FTNone {
				return ErrQueryFailed
			}
			if err := r.recover(ctx); err != nil {
				return err
			}
			aliveBefore = aliveNow
			continue
		}
		done, err := r.queryDone()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// queryDone reports whether every output-stage channel has finished and
// the collector has received all of their partitions. As a side effect it
// records known per-channel task counts in the collector, which is what
// lets an attached Cursor advance past a channel's last partition.
func (r *Runner) queryDone() (bool, error) {
	counts := make([]int, r.par[r.out])
	curs := make([]int, r.par[r.out])
	complete := true
	err := r.gcsView(func(tx *gcs.Txn) error {
		for c := 0; c < r.par[r.out]; c++ {
			id := lineage.ChannelID{Stage: r.out, Channel: c}
			curs[c] = txGetInt(tx, r.keyCursor(id), 0)
			n := txGetInt(tx, r.keyDone(id), -1)
			if n < 0 {
				complete = false
				counts[c] = -1
				continue
			}
			counts[c] = n
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	for c, n := range counts {
		// The committed watermark releases delivered partitions to the
		// cursor; it lags commits by at most one heartbeat.
		r.collector.setCommitted(c, curs[c])
		if n >= 0 {
			r.collector.setDoneCount(c, n)
		}
	}
	if !complete {
		return false, nil
	}
	for c := 0; c < r.par[r.out]; c++ {
		for q := 0; q < counts[c]; q++ {
			if !r.collector.has(lineage.TaskName{Stage: r.out, Channel: c, Seq: q}) {
				return false, nil
			}
		}
	}
	// Every partition is accounted for, but some may still be spooled on
	// workers (only their manifests are at the head). Drain them now, while
	// the workers are still up — teardown drops the spools. A failed fetch
	// means a worker just died: report not-done and let the liveness check
	// run recovery, which re-executes the lost output channel.
	if err := r.drainSpooled(); err != nil {
		return false, nil
	}
	return true, nil
}

// drainSpooled pulls every spooled result payload still referenced by a
// head-node manifest into the collector. Runs once, at completion; a
// streaming cursor may be consuming concurrently, so entries that vanish
// mid-drain (just consumed) are skipped.
func (r *Runner) drainSpooled() error {
	for _, e := range r.collector.spooledRefs() {
		w := r.cl.Worker(cluster.WorkerID(e.worker))
		data, err := w.Flight.FetchResult(r.qid, e.task)
		if err != nil {
			if !r.collector.hasSpooledOn(e.task, e.worker) {
				continue // consumed or invalidated while we fetched
			}
			return err
		}
		if r.collector.materialize(e.task, e.worker, data) {
			w.Flight.DropResult(r.qid, e.task)
		}
	}
	if r.collector.spooledCount() != 0 {
		return fmt.Errorf("engine: spooled results changed during drain")
	}
	return nil
}

// assembleResult decodes and concatenates the output partitions still held
// by the collector in (channel, seq) order. Partitions already consumed
// through a Cursor have been released and are not re-assembled.
func (r *Runner) assembleResult() (*batch.Batch, error) {
	parts := r.collector.snapshot()
	names := make([]lineage.TaskName, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Channel != names[j].Channel {
			return names[i].Channel < names[j].Channel
		}
		return names[i].Seq < names[j].Seq
	})
	var batches []*batch.Batch
	for _, n := range names {
		data := parts[n]
		if len(data) == 0 {
			continue
		}
		b, err := batch.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("engine: corrupt result partition %s: %w", n, err)
		}
		if b.NumRows() > 0 {
			batches = append(batches, b)
		}
	}
	return batch.Concat(batches)
}

// placement returns the worker currently hosting a channel, from a cache
// refreshed whenever the global epoch changes.
func (r *Runner) placement(id lineage.ChannelID) (int, error) {
	r.placeMu.RLock()
	w, ok := r.place[id]
	r.placeMu.RUnlock()
	if ok {
		return w, nil
	}
	var got int
	err := r.gcsView(func(tx *gcs.Txn) error {
		got = txGetInt(tx, r.keyPlacement(id), -1)
		return nil
	})
	if err != nil {
		return -1, err
	}
	if got < 0 {
		return -1, fmt.Errorf("engine: no placement for channel %s", id)
	}
	r.placeMu.Lock()
	r.place[id] = got
	r.placeMu.Unlock()
	return got, nil
}

// reportFailure surfaces a fatal task error (bad plan, corrupt data) to
// the coordinator, failing the query instead of retrying forever.
// Transient conditions (dead consumers, missing replays) are never
// reported here.
func (r *Runner) reportFailure(err error) {
	select {
	case r.failCh <- err:
	default:
	}
}

// invalidatePlacement clears the placement cache (after recovery).
func (r *Runner) invalidatePlacement() {
	r.placeMu.Lock()
	r.place = make(map[lineage.ChannelID]int)
	r.placeMu.Unlock()
}

// collector receives the output stage's partitions on the head node. It
// deduplicates retransmissions by task name, so recovery replays are
// harmless.
//
// With worker-side result spooling (the default) an entry is usually just
// a manifest — the payload stays on the producing worker and the entry
// records where; the cursor (or the completion drain) fetches the bytes on
// demand. The backpressure accounting always charges the real payload
// size, manifest or not, so the buffer bound means the same thing in both
// modes.
//
// When a Cursor is attached it doubles as the streaming buffer: partitions
// are released as the cursor consumes them (the consumed prefix is then
// tracked as a per-channel watermark so replayed retransmissions stay
// deduplicated), and deliveries beyond the configured buffer bound are
// rejected — the producing task then simply stays pending and retries,
// which turns the head-node buffer bound into end-to-end backpressure
// through the existing task-retry machinery.
type collector struct {
	mu   sync.Mutex
	cond *sync.Cond

	parts map[lineage.TaskName]resultPart
	bytes int64 // accounted payload bytes (spooled entries count their real size)

	outStage  int
	channels  int
	doneCount []int // committed task count per output channel; -1 = unknown
	committed []int // lineage-committed task count per channel (monotonic)
	read      []int // cursor watermark: partitions consumed + released

	streaming bool  // a cursor is attached
	limit     int64 // buffer bound while streaming; <=0 = unbounded
	needCh    int   // next partition the cursor will pull; always accepted
	needSeq   int

	term    bool // query reached a terminal state
	termErr error
}

// resultPart is one output partition at the head: either the payload
// itself (data non-nil or a consumed empty partition) or a manifest
// pointing at the worker spooling it.
type resultPart struct {
	data    []byte
	size    int64 // real payload size, accounted against the buffer bound
	epoch   int   // producing channel's rewind epoch at delivery
	spooled bool
	worker  int // spooling worker, when spooled
}

// spoolRef names a spooled entry for the completion drain.
type spoolRef struct {
	task   lineage.TaskName
	worker int
}

func newCollector(outStage, channels int) *collector {
	c := &collector{
		parts:     make(map[lineage.TaskName]resultPart),
		outStage:  outStage,
		channels:  channels,
		doneCount: make([]int, channels),
		committed: make([]int, channels),
		read:      make([]int, channels),
	}
	for i := range c.doneCount {
		c.doneCount[i] = -1
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// deliver offers a payload partition to the head node. It reports false
// only under cursor backpressure (buffer full); the producing task must
// then retry.
func (c *collector) deliver(t lineage.TaskName, data []byte, epoch int) bool {
	return c.admit(t, resultPart{data: data, size: int64(len(data)), epoch: epoch})
}

// deliverSpooled offers a manifest: the payload (size bytes) stays spooled
// on the given worker. Backpressure semantics are identical to deliver.
func (c *collector) deliverSpooled(t lineage.TaskName, worker int, size int64, epoch int) bool {
	return c.admit(t, resultPart{size: size, epoch: epoch, spooled: true, worker: worker})
}

func (c *collector) admit(t lineage.TaskName, p resultPart) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Channel < c.channels {
		if t.Seq < c.read[t.Channel] {
			return true // already consumed through the cursor; drop the rerun
		}
		if n := c.doneCount[t.Channel]; n >= 0 && t.Seq >= n {
			// The channel committed exactly n tasks; this is the leftover of
			// an aborted task from a pre-rewind incarnation. Accept-and-drop:
			// its commit is doomed to be fenced off anyway, and refusing would
			// put the producer into a pointless backpressure retry loop.
			return true
		}
	}
	if old, ok := c.parts[t]; ok {
		if old.epoch > p.epoch {
			// Zombie delivery: a worker declared dead (or a task of a since-
			// rewound channel) can still be mid-push and land after the new
			// incarnation re-delivered this seq, possibly with different
			// content. Accept-and-drop, mirroring the flight mailbox.
			return true
		}
		c.bytes -= old.size
	} else if c.streaming && c.limit > 0 && c.bytes+p.size > c.limit &&
		!(t.Channel == c.needCh && t.Seq == c.needSeq) {
		// Buffer full and this is not the partition the cursor is waiting
		// for: refuse, so the producer keeps it pending. The next-needed
		// partition is always accepted, which keeps the cursor livelock-free
		// even when out-of-order channels fill the buffer.
		return false
	}
	c.parts[t] = p
	c.bytes += p.size
	c.cond.Broadcast()
	return true
}

func (c *collector) has(t lineage.TaskName) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Channel < c.channels && t.Seq < c.read[t.Channel] {
		return true
	}
	_, ok := c.parts[t]
	return ok
}

// hasSpooledOn reports whether the entry for t is still a manifest
// pointing at the given worker.
func (c *collector) hasSpooledOn(t lineage.TaskName, worker int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parts[t]
	return ok && p.spooled && p.worker == worker
}

// spooledRefs snapshots the entries whose payloads are still on workers.
func (c *collector) spooledRefs() []spoolRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []spoolRef
	for t, p := range c.parts {
		if p.spooled {
			out = append(out, spoolRef{task: t, worker: p.worker})
		}
	}
	return out
}

func (c *collector) spooledCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.parts {
		if p.spooled {
			n++
		}
	}
	return n
}

// materialize replaces a manifest with its fetched payload. It reports
// false when the entry changed while the fetch was in flight (consumed by
// the cursor, or re-delivered after a rewind) — the caller must then NOT
// drop the worker-side spool it fetched from.
func (c *collector) materialize(t lineage.TaskName, worker int, data []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parts[t]
	if !ok || !p.spooled || p.worker != worker {
		return false
	}
	c.parts[t] = resultPart{data: data, size: p.size, epoch: p.epoch}
	c.cond.Broadcast()
	return true
}

// invalidateSpooledExcept drops manifests pointing at workers outside the
// alive set: their payloads died with the worker. Called after recovery
// reconciliation; the rewound output channels re-execute and re-deliver
// these partitions (deliveries below the cursor's read watermark stay
// deduplicated, so nothing is ever consumed twice).
func (c *collector) invalidateSpooledExcept(alive map[int]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for t, p := range c.parts {
		if p.spooled && !alive[p.worker] {
			c.bytes -= p.size
			delete(c.parts, t)
		}
	}
}

// setDoneCount records the committed task count of a finished output
// channel (which commits all of its tasks by definition).
func (c *collector) setDoneCount(channel, n int) {
	c.mu.Lock()
	if c.doneCount[channel] != n {
		c.doneCount[channel] = n
		// Deliveries at seq >= n are leftovers of tasks whose commit was
		// aborted (a recovery barrier fences whole group-commit flushes) and
		// whose channel was then rewound and re-executed with different task
		// boundaries, finishing in fewer, coarser tasks. They are not part of
		// the committed output — drop them so Result never assembles them.
		for t, p := range c.parts {
			if t.Channel == channel && t.Seq >= n {
				c.bytes -= p.size
				delete(c.parts, t)
			}
		}
		c.cond.Broadcast()
	}
	if n > c.committed[channel] {
		c.committed[channel] = n
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// setCommitted raises an output channel's lineage-committed task count.
// The cursor only ever consumes partitions below it: a delivered-but-
// uncommitted partition may still be aborted (its worker dying before the
// commit) and re-executed with different task boundaries, so releasing it
// to the consumer would break exactly-once streaming. Monotonic: recovery
// rewinds re-commit the same task prefix with identical contents (replay
// retraces committed lineage), so an observed commit never un-happens.
func (c *collector) setCommitted(channel, n int) {
	c.mu.Lock()
	if n > c.committed[channel] {
		c.committed[channel] = n
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// terminate marks the query terminal (nil err = clean completion), waking
// any blocked cursor.
func (c *collector) terminate(err error) {
	c.mu.Lock()
	c.term = true
	c.termErr = err
	c.cond.Broadcast()
	c.mu.Unlock()
}

// stream switches the collector into cursor mode with the given buffer
// bound (<=0 = unbounded).
func (c *collector) stream(limit int64) {
	c.mu.Lock()
	c.streaming = true
	c.limit = limit
	c.mu.Unlock()
}

// wake broadcasts the collector's condition; context cancellation hooks
// use it to unblock a waiting cursor.
func (c *collector) wake() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// next blocks until the next output partition in (channel, seq) order is
// available AND lineage-committed (the head node is a consumer, and
// consumers only ever consume committed inputs — an uncommitted delivery
// may still be aborted and re-executed with different boundaries), then
// consumes and releases it, returning its payload. Spooled partitions are
// fetched from their worker through the fetch callback (invoked without
// the collector lock held); a fetch failure means the worker died — the
// stale manifest is invalidated and next waits for recovery to re-deliver
// the partition. drop releases the worker-side spool once its entry has
// been consumed.
//
// It returns (nil, false, nil) at end of stream, ctx.Err() when ctx is
// cancelled, and the query's terminal error if it failed. Empty payloads
// (empty partitions) are returned like any other; the cursor skips them.
func (c *collector) next(ctx context.Context,
	fetch func(t lineage.TaskName, worker int) ([]byte, error),
	drop func(t lineage.TaskName, worker int)) (data []byte, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		// Skip past exhausted channels.
		for c.needCh < c.channels && c.doneCount[c.needCh] >= 0 && c.needSeq >= c.doneCount[c.needCh] {
			c.needCh++
			c.needSeq = 0
		}
		if c.needCh >= c.channels {
			return nil, false, nil
		}
		t := lineage.TaskName{Stage: c.outStage, Channel: c.needCh, Seq: c.needSeq}
		if p, found := c.parts[t]; found && c.needSeq < c.committed[c.needCh] {
			if !p.spooled {
				delete(c.parts, t)
				c.bytes -= p.size
				c.read[c.needCh] = c.needSeq + 1
				c.needSeq++
				return p.data, true, nil
			}
			// Manifest: pull the payload from its worker, lock released.
			worker := p.worker
			c.mu.Unlock()
			fetched, ferr := fetch(t, worker)
			c.mu.Lock()
			if ferr != nil {
				// The worker died under us. Invalidate the stale manifest
				// (unless it was already replaced) and wait for the rewound
				// output channel to re-deliver the partition.
				if cur, ok := c.parts[t]; ok && cur.spooled && cur.worker == worker {
					c.bytes -= cur.size
					delete(c.parts, t)
				}
				continue
			}
			// Confirm the entry is unchanged before consuming: a rewind may
			// have re-delivered it (necessarily from a different, live
			// worker) while the fetch was in flight.
			if cur, ok := c.parts[t]; ok && cur.spooled && cur.worker == worker {
				delete(c.parts, t)
				c.bytes -= cur.size
				c.read[c.needCh] = c.needSeq + 1
				c.needSeq++
				drop(t, worker)
				return fetched, true, nil
			}
			continue
		}
		if c.term {
			if c.termErr != nil {
				return nil, false, c.termErr
			}
			return nil, false, fmt.Errorf("engine: result partition %d.%d missing after completion", c.needCh, c.needSeq)
		}
		c.cond.Wait()
	}
}

// snapshot returns the buffered payloads. Spooled entries have been
// drained to the head before the query reports completion, so after a
// successful Wait every remaining entry carries its payload.
func (c *collector) snapshot() map[lineage.TaskName][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[lineage.TaskName][]byte, len(c.parts))
	for k, v := range c.parts {
		if !v.spooled {
			out[k] = v.data
		}
	}
	return out
}
