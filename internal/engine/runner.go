package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
)

// ErrQueryFailed is returned when a worker failure cannot be recovered
// (fault tolerance disabled). Callers may restart the query from scratch —
// the paper's restart baseline.
var ErrQueryFailed = errors.New("engine: query failed due to worker failure (no fault tolerance)")

// ErrNoWorkers is returned when every worker has died.
var ErrNoWorkers = errors.New("engine: all workers failed")

// Report summarizes one query execution. All counters are per query, even
// when other queries ran concurrently on the same cluster: the runner
// counts its own events into a private collector alongside the cluster's.
type Report struct {
	QueryID       string
	Duration      time.Duration
	Recoveries    int
	TasksExecuted int64
	TasksReplayed int64
	Metrics       map[string]int64
}

// Runner executes one plan on one cluster under one configuration. Any
// number of runners may execute concurrently on one cluster: every piece
// of a runner's state — GCS keys, flight mailbox slots, upstream backups,
// spill namespaces, metrics — is namespaced by its query id, and the
// cluster's admission controller bounds how many run at once.
type Runner struct {
	cl     *cluster.Cluster
	plan   *Plan
	cfg    Config
	qid    string         // cluster-unique query id; prefixes all per-query state
	shared *clusterShared // per-cluster admission + worker resource pools

	spool *storage.ObjectStore // durable target for FTSpool/FTCheckpoint
	met   *metrics.Collector   // cluster-wide collector
	qmet  *metrics.Collector   // per-query collector (feeds the Report)
	tee   *metrics.Collector   // write-only fan-out to both of the above

	out     int    // output stage
	par     []int  // parallelism per stage
	spooled []bool // per stage: FTSpool persists its outputs (wide edges)

	collector *collector
	recovered int
	failCh    chan error

	placeMu sync.RWMutex
	place   map[lineage.ChannelID]int // cached placement
	gep     int
}

// NewRunner validates the plan against the cluster and prepares a runner.
func NewRunner(cl *cluster.Cluster, plan *Plan, cfg Config) (*Runner, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	out, err := plan.OutputStage()
	if err != nil {
		return nil, err
	}
	if cfg.MaxTake <= 0 {
		cfg.MaxTake = 64
	}
	if cfg.MinTake <= 0 {
		cfg.MinTake = 1
	}
	if cfg.MinTake > cfg.MaxTake {
		cfg.MinTake = cfg.MaxTake
	}
	if cfg.ThreadsPerWorker <= 0 {
		cfg.ThreadsPerWorker = 8
	}
	if cfg.CPUPerWorker <= 0 {
		cfg.CPUPerWorker = 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.CPUPerWorker
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if !cfg.Dynamic && cfg.StaticBatch <= 0 {
		return nil, fmt.Errorf("engine: static dependency mode requires StaticBatch > 0")
	}
	shared := sharedFor(cl)
	qmet := &metrics.Collector{}
	r := &Runner{
		cl:     cl,
		plan:   plan,
		cfg:    cfg,
		qid:    shared.newQueryID(),
		shared: shared,
		met:    cl.Metrics,
		qmet:   qmet,
		tee:    metrics.Tee(cl.Metrics, qmet),
		out:    out,
		spool:  storage.NewObjectStore(cl.Cost, cfg.SpoolProfile, cl.Metrics),
	}
	r.par = make([]int, len(plan.Stages))
	for i := range plan.Stages {
		r.par[i] = plan.Parallelism(i, len(cl.Workers))
	}
	// Spooling persists shuffle partitions: outputs that cross a wide
	// (exchange) edge. Narrow Direct edges are pipeline-fused, as in
	// Trino, and never materialize durably.
	r.spooled = make([]bool, len(plan.Stages))
	for i := range plan.Stages {
		for _, e := range plan.Consumers(i) {
			if e.Part.Kind != PartitionDirect {
				r.spooled[i] = true
			}
		}
	}
	r.collector = newCollector(out, r.par[out])
	r.place = make(map[lineage.ChannelID]int)
	r.failCh = make(chan error, 1)
	return r, nil
}

// QueryID returns the runner's cluster-unique query id.
func (r *Runner) QueryID() string { return r.qid }

// Spool exposes the durable spool store (tests and benches inspect it).
func (r *Runner) Spool() *storage.ObjectStore { return r.spool }

// count records an engine event into both the cluster-wide collector and
// this query's private collector.
func (r *Runner) count(name string, delta int64) {
	r.met.Add(name, delta)
	r.qmet.Add(name, delta)
}

// gcsUpdate runs a read-write GCS transaction and attributes its traffic
// to this query: every engine transaction touches only the query's own
// namespace, so the attribution is exact. The store keeps counting the
// cluster totals itself.
func (r *Runner) gcsUpdate(fn func(tx *gcs.Txn) error) error {
	var bytes int64
	err := r.cl.GCS.Update(func(tx *gcs.Txn) error {
		if err := fn(tx); err != nil {
			return err
		}
		bytes = tx.WriteBytes()
		return nil
	})
	if err == nil {
		r.qmet.Add(metrics.GCSTxns, 1)
		r.qmet.Add(metrics.GCSBytes, bytes)
	}
	return err
}

// gcsView runs a read-only GCS transaction, counted into the per-query
// transaction total (views carry no payload).
func (r *Runner) gcsView(fn func(tx *gcs.Txn) error) error {
	err := r.cl.GCS.View(fn)
	if err == nil {
		r.qmet.Add(metrics.GCSTxns, 1)
	}
	return err
}

// Run executes the query to completion, returning the concatenated output
// and a report. It blocks until the query finishes, fails, or ctx is
// cancelled. Run is sugar over Start + Query.Result — every caller that
// wants concurrent queries, streaming output or cancellation handles uses
// Start directly.
func (r *Runner) Run(ctx context.Context) (*batch.Batch, *Report, error) {
	return r.Start(ctx).Result()
}

// execute is the query lifecycle: admission, seed, task managers,
// coordination, teardown. It runs on the Query's goroutine and returns the
// terminal error (nil on success). Teardown happens on EVERY exit path —
// including cancellation and failure — and only after all of this query's
// task-manager threads have stopped, so a torn-down query leaves no spill
// files, mailbox slots, disk backups or GCS keys behind, without
// disturbing concurrent queries.
func (r *Runner) execute(ctx context.Context) error {
	if err := r.shared.admit.acquire(ctx); err != nil {
		return err
	}
	defer r.shared.admit.release()
	if err := r.seed(); err != nil {
		r.cleanup()
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for _, w := range r.cl.Workers {
		if !w.Alive() {
			continue
		}
		t := newTaskManager(r, w)
		for i := 0; i < r.cfg.ThreadsPerWorker; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				t.loop(ctx)
			}()
		}
	}

	err := r.coordinate(ctx)
	cancel()
	wg.Wait()
	r.cleanup()
	return err
}

// sweepSpill deletes every spill run file of THIS query from the live
// workers' disks. Run at seed time (defensive: query ids are unique, so
// the namespace should be empty) and at query teardown on every exit path
// — completion, failure and cancellation — which is the no-leak guarantee
// the tests assert on. Other queries' spill namespaces are untouched.
func (r *Runner) sweepSpill() {
	for _, w := range r.cl.Workers {
		if w.Alive() {
			w.Disk.DeletePrefix("spill/" + r.qid + "/")
		}
	}
}

// cleanup tears down every trace of the query outside the head node: spill
// namespaces, flight mailbox slots, upstream backups, and the query's
// whole GCS namespace. Must only run after the query's task managers have
// stopped (they would otherwise re-create state behind the sweep).
func (r *Runner) cleanup() {
	r.sweepSpill()
	for _, w := range r.cl.Workers {
		if !w.Alive() {
			continue
		}
		w.Flight.DropQuery(r.qid)
		w.Disk.DeletePrefix("bk/" + r.qid + "/")
	}
	ns := r.keyNS()
	r.gcsUpdate(func(tx *gcs.Txn) error {
		for _, k := range tx.List(ns) {
			tx.Delete(k)
		}
		return nil
	})
}

// seed writes the initial execution state into the query's GCS namespace:
// placement of every channel, zero cursors and epochs. Channel c of every
// stage starts on worker c mod W, so each worker hosts one channel of each
// data-parallel stage, as in §IV-A. Nothing outside q/<qid>/ is touched —
// concurrent queries' state is invisible from here.
func (r *Runner) seed() error {
	alive := r.cl.Alive()
	if len(alive) == 0 {
		return ErrNoWorkers
	}
	r.sweepSpill()
	return r.gcsUpdate(func(tx *gcs.Txn) error {
		for s := range r.plan.Stages {
			for c := 0; c < r.par[s]; c++ {
				id := lineage.ChannelID{Stage: s, Channel: c}
				w := alive[c%len(alive)]
				txPutInt(tx, r.keyPlacement(id), int(w))
				txPutInt(tx, r.keyCursor(id), 0)
				txPutInt(tx, r.keyChanEpoch(id), 0)
			}
		}
		// Record the operator partition count: every TaskManager — including
		// ones that replay lineage onto fresh workers after a failure — must
		// split stateful operator state into the same hash partitions, or
		// replayed state would not match what the dead worker had built.
		txPutInt(tx, r.keyOpParallelism(), r.cfg.Parallelism)
		txPutInt(tx, r.keyGlobalEpoch(), 1)
		return nil
	})
}

// coordinate is the head-node loop: it watches worker liveness, triggers
// recovery, and detects query completion. Each in-flight query runs its
// own coordinator; a worker failure makes every one of them replay its own
// lineage independently.
func (r *Runner) coordinate(ctx context.Context) error {
	aliveBefore := r.cl.AliveCount()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-r.failCh:
			return err
		case <-ticker.C:
		}
		aliveNow := r.cl.AliveCount()
		if aliveNow == 0 {
			return ErrNoWorkers
		}
		if aliveNow < aliveBefore {
			if r.cfg.FT == FTNone {
				return ErrQueryFailed
			}
			if err := r.recover(ctx); err != nil {
				return err
			}
			aliveBefore = aliveNow
			continue
		}
		done, err := r.queryDone()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// queryDone reports whether every output-stage channel has finished and
// the collector has received all of their partitions. As a side effect it
// records known per-channel task counts in the collector, which is what
// lets an attached Cursor advance past a channel's last partition.
func (r *Runner) queryDone() (bool, error) {
	counts := make([]int, r.par[r.out])
	complete := true
	err := r.gcsView(func(tx *gcs.Txn) error {
		for c := 0; c < r.par[r.out]; c++ {
			id := lineage.ChannelID{Stage: r.out, Channel: c}
			n := txGetInt(tx, r.keyDone(id), -1)
			if n < 0 {
				complete = false
				counts[c] = -1
				continue
			}
			counts[c] = n
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	for c, n := range counts {
		if n >= 0 {
			r.collector.setDoneCount(c, n)
		}
	}
	if !complete {
		return false, nil
	}
	for c := 0; c < r.par[r.out]; c++ {
		for q := 0; q < counts[c]; q++ {
			if !r.collector.has(lineage.TaskName{Stage: r.out, Channel: c, Seq: q}) {
				return false, nil
			}
		}
	}
	return true, nil
}

// assembleResult decodes and concatenates the output partitions still held
// by the collector in (channel, seq) order. Partitions already consumed
// through a Cursor have been released and are not re-assembled.
func (r *Runner) assembleResult() (*batch.Batch, error) {
	parts := r.collector.snapshot()
	names := make([]lineage.TaskName, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Channel != names[j].Channel {
			return names[i].Channel < names[j].Channel
		}
		return names[i].Seq < names[j].Seq
	})
	var batches []*batch.Batch
	for _, n := range names {
		data := parts[n]
		if len(data) == 0 {
			continue
		}
		b, err := batch.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("engine: corrupt result partition %s: %w", n, err)
		}
		if b.NumRows() > 0 {
			batches = append(batches, b)
		}
	}
	return batch.Concat(batches)
}

// placement returns the worker currently hosting a channel, from a cache
// refreshed whenever the global epoch changes.
func (r *Runner) placement(id lineage.ChannelID) (int, error) {
	r.placeMu.RLock()
	w, ok := r.place[id]
	r.placeMu.RUnlock()
	if ok {
		return w, nil
	}
	var got int
	err := r.gcsView(func(tx *gcs.Txn) error {
		got = txGetInt(tx, r.keyPlacement(id), -1)
		return nil
	})
	if err != nil {
		return -1, err
	}
	if got < 0 {
		return -1, fmt.Errorf("engine: no placement for channel %s", id)
	}
	r.placeMu.Lock()
	r.place[id] = got
	r.placeMu.Unlock()
	return got, nil
}

// reportFailure surfaces a fatal task error (bad plan, corrupt data) to
// the coordinator, failing the query instead of retrying forever.
// Transient conditions (dead consumers, missing replays) are never
// reported here.
func (r *Runner) reportFailure(err error) {
	select {
	case r.failCh <- err:
	default:
	}
}

// invalidatePlacement clears the placement cache (after recovery).
func (r *Runner) invalidatePlacement() {
	r.placeMu.Lock()
	r.place = make(map[lineage.ChannelID]int)
	r.placeMu.Unlock()
}

// collector receives the output stage's partitions on the head node. It
// deduplicates retransmissions by task name, so recovery replays are
// harmless.
//
// When a Cursor is attached it doubles as the streaming buffer: partitions
// are released as the cursor consumes them (the consumed prefix is then
// tracked as a per-channel watermark so replayed retransmissions stay
// deduplicated), and deliveries beyond the configured buffer bound are
// rejected — the producing task then simply stays pending and retries,
// which turns the head-node buffer bound into end-to-end backpressure
// through the existing task-retry machinery.
type collector struct {
	mu   sync.Mutex
	cond *sync.Cond

	parts map[lineage.TaskName][]byte
	bytes int64 // buffered encoded payload bytes

	outStage  int
	channels  int
	doneCount []int // committed task count per output channel; -1 = unknown
	read      []int // cursor watermark: partitions consumed + released

	streaming bool  // a cursor is attached
	limit     int64 // buffer bound while streaming; <=0 = unbounded
	needCh    int   // next partition the cursor will pull; always accepted
	needSeq   int

	term    bool // query reached a terminal state
	termErr error
}

func newCollector(outStage, channels int) *collector {
	c := &collector{
		parts:     make(map[lineage.TaskName][]byte),
		outStage:  outStage,
		channels:  channels,
		doneCount: make([]int, channels),
		read:      make([]int, channels),
	}
	for i := range c.doneCount {
		c.doneCount[i] = -1
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// deliver offers a partition to the head node. It reports false only under
// cursor backpressure (buffer full); the producing task must then retry.
func (c *collector) deliver(t lineage.TaskName, data []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Channel < c.channels && t.Seq < c.read[t.Channel] {
		return true // already consumed through the cursor; drop the rerun
	}
	if old, ok := c.parts[t]; ok {
		c.bytes -= int64(len(old))
	} else if c.streaming && c.limit > 0 && c.bytes+int64(len(data)) > c.limit &&
		!(t.Channel == c.needCh && t.Seq == c.needSeq) {
		// Buffer full and this is not the partition the cursor is waiting
		// for: refuse, so the producer keeps it pending. The next-needed
		// partition is always accepted, which keeps the cursor livelock-free
		// even when out-of-order channels fill the buffer.
		return false
	}
	c.parts[t] = data
	c.bytes += int64(len(data))
	c.cond.Broadcast()
	return true
}

func (c *collector) has(t lineage.TaskName) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Channel < c.channels && t.Seq < c.read[t.Channel] {
		return true
	}
	_, ok := c.parts[t]
	return ok
}

// setDoneCount records the committed task count of an output channel.
func (c *collector) setDoneCount(channel, n int) {
	c.mu.Lock()
	if c.doneCount[channel] != n {
		c.doneCount[channel] = n
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// terminate marks the query terminal (nil err = clean completion), waking
// any blocked cursor.
func (c *collector) terminate(err error) {
	c.mu.Lock()
	c.term = true
	c.termErr = err
	c.cond.Broadcast()
	c.mu.Unlock()
}

// stream switches the collector into cursor mode with the given buffer
// bound (<=0 = unbounded).
func (c *collector) stream(limit int64) {
	c.mu.Lock()
	c.streaming = true
	c.limit = limit
	c.mu.Unlock()
}

// next blocks until the next output partition in (channel, seq) order is
// available, consumes and releases it, and returns its payload. It returns
// (nil, false, nil) at end of stream and the query's terminal error if it
// failed. Empty payloads (empty partitions) are returned like any other;
// the cursor skips them.
func (c *collector) next() (data []byte, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		// Skip past exhausted channels.
		for c.needCh < c.channels && c.doneCount[c.needCh] >= 0 && c.needSeq >= c.doneCount[c.needCh] {
			c.needCh++
			c.needSeq = 0
		}
		if c.needCh >= c.channels {
			return nil, false, nil
		}
		t := lineage.TaskName{Stage: c.outStage, Channel: c.needCh, Seq: c.needSeq}
		if data, found := c.parts[t]; found {
			delete(c.parts, t)
			c.bytes -= int64(len(data))
			c.read[c.needCh] = c.needSeq + 1
			c.needSeq++
			return data, true, nil
		}
		if c.term {
			if c.termErr != nil {
				return nil, false, c.termErr
			}
			return nil, false, fmt.Errorf("engine: result partition %d.%d missing after completion", c.needCh, c.needSeq)
		}
		c.cond.Wait()
	}
}

func (c *collector) snapshot() map[lineage.TaskName][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[lineage.TaskName][]byte, len(c.parts))
	for k, v := range c.parts {
		out[k] = v
	}
	return out
}
