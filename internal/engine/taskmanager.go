package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/flight"
	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/ops"
	"quokka/internal/spill"
	"quokka/internal/trace"
)

// taskManager runs the channels placed on one worker. It is the paper's
// TaskManager (§IV-A): a stateless poller of the GCS executing Algorithm 1
// steps. All inter-component coordination flows through the GCS; the only
// state a TaskManager keeps in memory is the operator state of its
// channels, which is reconstructable from the lineage log.
type taskManager struct {
	r *Runner
	w *cluster.Worker

	mu       sync.Mutex
	channels map[lineage.ChannelID]*chanState
	gep      int // global epoch the channel set was loaded at
	ackedBar int // last barrier generation acknowledged
	opp      int // operator partition count, read from the GCS (opp key)

	// cpu bounds concurrently modelled kernel work on this worker: I/O
	// waits (S3 reads, shuffle pushes, disk writes) do not hold a slot,
	// so compute overlaps I/O exactly as in an engine with async reads.
	cpu chan struct{}

	// pool fans partitioned operator work (hash join build/probe, hash
	// aggregation) out across the cpu slots, so intra-operator parallelism
	// and inter-channel parallelism compete for the same modelled cores.
	pool *ops.Pool

	// spill is the worker's memory-governance context (nil when
	// Config.MemoryBudget is 0): one accountant shared by all channels on
	// this worker, spilling operator state to the worker's local disk.
	spill *spill.Context

	// doneIDs caches channels known to have finished so idle polls skip
	// their (and their upstreams') GCS reads. Cleared on epoch change.
	doneMu  sync.Mutex
	doneIDs map[lineage.ChannelID]bool

	// replayGen is the last recovery generation whose replay queue this
	// TaskManager has fully drained; prefix scans of the replay queue
	// only happen after a recovery, never in steady state. replayLock
	// ensures a single thread drains the queue at a time.
	replayGen  int
	replayLock sync.Mutex

	// takeScale coarsens dynamic task granularity under admission
	// pressure: when queries are queued behind the admission gate, each
	// task consumes a multiple of the configured Min/MaxTake, shrinking
	// head round-trips per query exactly when the head is the bottleneck.
	// Refreshed once per poll round; timing-only, never output-visible
	// (dynamic takes are already run-dependent).
	takeScale atomic.Int32
}

// chanState is the in-memory execution state of one channel: the operator
// instance (the paper's "state variable"), plus caches of the channel's
// GCS coordinates.
type chanState struct {
	// protocol serializes the Algorithm 1 task protocol (input choice,
	// lineage commit, cursor advance) — channel tasks stay sequential, as
	// the lineage log requires. It no longer implies single-threaded
	// compute: inside a task, partitioned operators fan build/probe/
	// accumulate work out across per-partition goroutines, each owning one
	// hash partition of the operator state.
	protocol sync.Mutex

	id    lineage.ChannelID
	stage *Stage

	cep      int // channel epoch this state is valid for
	cursor   int
	wm       lineage.Watermark
	done     bool
	op       ops.Operator
	splits   int // reader stages: total splits of the table
	pending  *pendingTask
	lastCkpt int
	stepGep  int // global epoch observed at step start; fences commits

	// spillOp is the operator's root spill handle (nil without memory
	// governance); spillBytes/spillRuns are its write totals at the last
	// task commit, so the flight recorder can attribute spill volume to
	// individual tasks as deltas.
	spillOp    *spill.Op
	spillBytes int64
	spillRuns  int64
}

// pendingTask is a task that executed but whose pushes failed (a consumer
// worker died). Algorithm 1 returns without committing; the outputs are
// kept so the retry re-pushes without re-running the operator, preserving
// exactly-once state mutation.
type pendingTask struct {
	seq      int
	rec      lineage.Record
	out      *batch.Batch // nil if the task produced no rows
	finalize bool

	// started stamps task creation; the task-latency histogram and trace
	// span measure creation -> successful commit, so backpressure retries
	// are included (a task stuck behind a full cursor buffer is honestly
	// slow). inRows/inBytes count the consumed input (wire bytes).
	started time.Time
	inRows  int64
	inBytes int64
}

func newTaskManager(r *Runner, w *cluster.Worker) *taskManager {
	t := &taskManager{
		r: r, w: w,
		channels: map[lineage.ChannelID]*chanState{},
		gep:      -1,
		opp:      1,
		// The CPU slot pool is a WORKER resource shared by every in-flight
		// query: concurrent queries' channels (and their partition lanes)
		// compete for the same modelled cores instead of each bringing
		// their own.
		cpu:     r.shared.cpuFor(w.ID, r.cfg.CPUPerWorker),
		doneIDs: map[lineage.ChannelID]bool{},
	}
	t.pool = ops.NewPool(t.cpu, func(n int) {
		r.count(metrics.PartitionTasks, int64(n))
	})
	if r.cfg.MemoryBudget > 0 {
		// The accountant is per query per worker (MemoryBudget is a query
		// knob); the worker's cross-query ledger tracks total accounted
		// state across queries and, when SetWorkerMemoryBudget configured a
		// cap, makes concurrent queries spill against the worker's total as
		// well. The tee collector routes spill metrics into both the
		// cluster-wide and the per-query counters.
		acct := spill.NewAccountant(r.cfg.MemoryBudget, r.tee)
		acct.AttachLedger(r.shared.ledgerFor(w.ID))
		t.spill = spill.NewContext(w.Disk, acct, r.tee, spill.DefaultPartitions)
		t.spill.SetCompression(r.spillCompress)
	}
	return t
}

// loop is one executor thread. Multiple threads of the same TaskManager
// share the channel map; the per-channel claim lock keeps a channel's
// tasks sequential, as the execution model requires.
func (t *taskManager) loop(ctx context.Context) {
	idle := t.r.cfg.PollInterval
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.w.Killed():
			return
		default:
		}
		progressed, barrier := t.poll()
		if barrier {
			t.ackBarrier()
			time.Sleep(t.r.cfg.PollInterval)
			continue
		}
		if progressed {
			idle = t.r.cfg.PollInterval
			continue
		}
		// Exponential idle backoff keeps control-store pressure bounded
		// on wide clusters while staying responsive under load. The cap
		// scales with the number of admitted queries: at high admission
		// limits hundreds of executor threads idle concurrently, and their
		// aggregate wakeup rate — not any one thread's latency — is what
		// loads the head node's cores.
		time.Sleep(idle)
		cap := time.Duration(16) * t.r.cfg.PollInterval
		if n := t.r.shared.admit.activeNow(); n > 1 {
			cap *= time.Duration(n)
		}
		if idle < cap {
			idle *= 2
		}
	}
}

// poll runs one round over the worker's channels and replay queue. All
// channels' coordination state is read in a single GCS view per round —
// one head-node round trip, not one per channel — keeping the control
// plane cost per task negligible, as the paper reports for its optimized
// naming scheme (§IV-B).
func (t *taskManager) poll() (progressed, barrier bool) {
	ver := t.r.gcsVersion()
	bar, gep, recn := t.r.pollHeader(ver)
	if bar != 0 {
		return false, true
	}
	t.refreshChannels(gep)

	// Adaptive task granularity: scale takes by the live head-node load —
	// queries running concurrently plus queries queued behind the gate.
	// Every admitted query polls and commits against the same head, so
	// high admission limits need coarse tasks just as much as deep queues;
	// coarser tasks cut the per-query transaction and poll load exactly
	// when the head is the bottleneck.
	scale := int32(1)
	admit := t.r.shared.admit
	switch load := admit.queuedNow() + admit.activeNow() - 1; {
	case load >= 12:
		scale = 8
	case load >= 4:
		scale = 4
	case load >= 1:
		scale = 2
	}
	t.takeScale.Store(scale)

	// Replay queues are only populated by recovery; skip the prefix scans
	// entirely in steady state and once this generation's queue drained.
	t.mu.Lock()
	needReplays := recn > 0 && t.replayGen < recn
	t.mu.Unlock()
	if needReplays && t.replayLock.TryLock() {
		ran, drained := t.runReplays()
		t.replayLock.Unlock()
		if ran {
			progressed = true
		}
		if drained && !ran {
			t.mu.Lock()
			if recn > t.replayGen {
				t.replayGen = recn
			}
			t.mu.Unlock()
		}
	}
	t.mu.Lock()
	states := make([]*chanState, 0, len(t.channels))
	for _, cs := range t.channels {
		if !t.isDone(cs.id) {
			states = append(states, cs)
		}
	}
	t.mu.Unlock()
	if len(states) == 0 {
		return progressed, false
	}
	metas, err := t.cachedMetas(states, ver)
	if err != nil {
		if t.w.Alive() {
			t.r.reportFailure(err)
		}
		return false, false
	}
	for i, cs := range states {
		if !cs.protocol.TryLock() {
			continue
		}
		cs.stepGep = gep
		ok, err := t.step(cs, metas[i])
		cs.protocol.Unlock()
		if err != nil {
			// Errors from a dying worker are expected; anything else is a
			// fatal plan or data error that retrying cannot fix.
			if t.w.Alive() {
				t.r.reportFailure(err)
			}
			continue
		}
		if ok {
			progressed = true
		}
	}
	return progressed, false
}

// ackBarrier records that this TaskManager has quiesced under the current
// barrier generation, implementing the GCS-level lock of §IV-B.
func (t *taskManager) ackBarrier() {
	var gen int
	t.r.gcsView(func(tx *gcs.Txn) error {
		gen = txGetInt(tx, t.r.keyBarrier(), 0)
		return nil
	})
	t.mu.Lock()
	already := gen == 0 || gen == t.ackedBar
	if !already {
		t.ackedBar = gen
	}
	t.mu.Unlock()
	if already {
		return
	}
	t.r.gcsUpdate(func(tx *gcs.Txn) error {
		txPutInt(tx, t.r.keyAck(int(t.w.ID)), gen)
		return nil
	})
}

// refreshChannels reloads the set of channels placed on this worker when
// the global epoch changes (initially and after each recovery).
func (t *taskManager) refreshChannels(gep int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gep == t.gep {
		return
	}
	// The epoch changed because recovery re-placed channels: drop the
	// runner's placement cache so pushes re-resolve destinations. On the
	// head, recovery already invalidated it; inside a worker process this
	// is the only site that observes the change.
	t.r.invalidatePlacement()
	mine := make(map[lineage.ChannelID]bool)
	t.r.gcsView(func(tx *gcs.Txn) error {
		t.opp = txGetInt(tx, t.r.keyOpParallelism(), t.r.cfg.Parallelism)
		for s := range t.r.plan.Stages {
			for c := 0; c < t.r.par[s]; c++ {
				id := lineage.ChannelID{Stage: s, Channel: c}
				if txGetInt(tx, t.r.keyPlacement(id), -1) == int(t.w.ID) {
					mine[id] = true
				}
			}
		}
		return nil
	})
	for id := range t.channels {
		if !mine[id] {
			delete(t.channels, id)
		}
	}
	for id := range mine {
		if _, ok := t.channels[id]; !ok {
			t.channels[id] = &chanState{id: id, stage: t.r.plan.Stages[id.Stage], cep: -1}
		}
	}
	t.doneMu.Lock()
	t.doneIDs = map[lineage.ChannelID]bool{}
	t.doneMu.Unlock()
	t.gep = gep
}

func (t *taskManager) markDone(id lineage.ChannelID) {
	t.doneMu.Lock()
	t.doneIDs[id] = true
	t.doneMu.Unlock()
}

func (t *taskManager) isDone(id lineage.ChannelID) bool {
	t.doneMu.Lock()
	defer t.doneMu.Unlock()
	return t.doneIDs[id]
}

// chanMeta is the per-step snapshot of a channel's GCS coordinates plus
// everything needed to pick inputs.
type chanMeta struct {
	cep        int
	cursor     int
	replayRec  *lineage.Record
	upCursor   map[lineage.EdgeChannel]int // committed task count per upstream channel
	upDone     map[lineage.EdgeChannel]int // done marker (-1 if absent)
	stageDone  map[int]bool                // upstream stage fully done (stagewise gating)
	checkpoint *checkpointMark
}

// step attempts one Algorithm 1 task step for a channel. It returns
// whether progress was made.
func (t *taskManager) step(cs *chanState, meta *chanMeta) (bool, error) {
	// A meta is a snapshot; this channel may have moved since it was read
	// (another executor thread committed a task, or recovery rewound the
	// channel, between the snapshot and our TryLock). Epochs and cursors
	// only grow, so staleness is detectable — and acting on a stale meta is
	// not just wasted work: meta.replayRec is "the lineage record at
	// meta.cursor", which for a stale cursor is the PREVIOUS task's record;
	// replaying it at the current seq would duplicate that task's output
	// and commit the seq without lineage. Skip instead — whatever moved the
	// channel also bumped the namespace version, so the next poll round
	// refetches a fresh snapshot.
	if meta.cep < cs.cep {
		return false, nil
	}
	if meta.cep > cs.cep {
		if err := t.resetChannel(cs, meta); err != nil {
			return false, err
		}
	}
	if cs.done {
		return false, nil
	}
	if meta.cursor != cs.cursor {
		return false, nil
	}
	if cs.op == nil && cs.stage.Op != nil {
		cs.op = t.newOperator(cs)
		if meta.checkpoint != nil && meta.checkpoint.Seq == cs.cursor && cs.cursor > 0 {
			if err := t.restoreCheckpoint(cs, meta.checkpoint); err != nil {
				return false, err
			}
		}
	}
	// Retry a pending task whose pushes previously failed.
	if p := cs.pending; p != nil {
		if p.seq != cs.cursor {
			cs.pending = nil
		} else {
			return t.finishTask(cs, p, meta.replayRec != nil)
		}
	}
	if meta.replayRec != nil {
		return t.replayStep(cs, *meta.replayRec)
	}
	return t.normalStep(cs, meta)
}

// newOperator instantiates the channel's operator. When the query's
// recorded partition count is > 1 and the spec supports it, the operator is
// created partition-parallel: its state split into hash partitions that
// execute on this worker's CPU-slot pool. The partition count comes from
// the GCS (seeded once per query), not the local config, so replacement
// TaskManagers replaying lineage rebuild identically partitioned state.
func (t *taskManager) newOperator(cs *chanState) ops.Operator {
	t.mu.Lock()
	p := t.opp
	t.mu.Unlock()
	var op ops.Operator
	if p > 1 {
		if ps, ok := cs.stage.Op.(ops.ParallelSpec); ok {
			op = ps.NewParallel(cs.id.Channel, t.r.par[cs.id.Stage], p, t.pool)
		}
	}
	if op == nil {
		op = cs.stage.Op.New(cs.id.Channel, t.r.par[cs.id.Stage])
	}
	// Memory governance: spill-capable operators get a handle namespaced
	// by query, channel AND channel epoch, so a rewound channel's
	// replacement operator never collides with (or reads) stale
	// pre-failure run files — and concurrent queries' spill files never
	// collide with each other.
	if t.spill != nil {
		if sb, ok := op.(ops.Spillable); ok {
			so := t.spill.NewOp(spillNS(t.r.qid, cs.id, cs.cep))
			sb.SetSpill(so)
			cs.spillOp, cs.spillBytes, cs.spillRuns = so, 0, 0
		}
	}
	return op
}

// opSharesFor returns how many CPU slots an operator actually fans work on
// a batch of the given row count out over — row-wise morsel operators run
// small batches on a single lane, and the modelled kernel cost must not
// claim parallelism the kernels don't deliver. Finalize call sites pass
// the finalize output's row count: hash-partitioned operators (the only
// ones with real finalize fan-out) ignore the row count.
func opSharesFor(op ops.Operator, rows int) int {
	if p, ok := op.(ops.Partitioned); ok {
		if s := p.SharesFor(rows); s > 1 {
			return s
		}
	}
	return 1
}

// cachedMetas returns every state's chanMeta from the query's shared
// version-stamped poll snapshot, refetching (one GCS view) when the
// namespace changed since the snapshot was taken or a channel is missing
// from it. Metas are immutable after load, so sharing one snapshot across
// rounds, threads AND workers observes exactly the state an unconditional
// per-round view would have read; per-worker loads at the same version
// merge into the shared map, so each version change costs one scan per
// worker-channel subset, not one per polling thread.
func (t *taskManager) cachedMetas(states []*chanState, ver uint64) ([]*chanMeta, error) {
	r := t.r
	r.snapMu.Lock()
	if r.snapValid && r.snapVer == ver && r.snapMetas != nil {
		out := make([]*chanMeta, len(states))
		hit := true
		for i, cs := range states {
			m, ok := r.snapMetas[cs.id]
			if !ok {
				hit = false
				break
			}
			out[i] = m
		}
		if hit {
			r.snapMu.Unlock()
			return out, nil
		}
	}
	r.snapMu.Unlock()
	metas, err := t.loadMetas(states)
	if err != nil {
		return nil, err
	}
	r.snapMu.Lock()
	if r.snapValid && r.snapVer == ver {
		if r.snapMetas == nil {
			r.snapMetas = make(map[lineage.ChannelID]*chanMeta, len(states))
		}
		for i, cs := range states {
			r.snapMetas[cs.id] = metas[i]
		}
	}
	r.snapMu.Unlock()
	return metas, nil
}

// loadMetas reads every channel's coordination state in one GCS view.
func (t *taskManager) loadMetas(states []*chanState) ([]*chanMeta, error) {
	out := make([]*chanMeta, len(states))
	err := t.r.gcsView(func(tx *gcs.Txn) error {
		for i, cs := range states {
			m := &chanMeta{
				upCursor:  make(map[lineage.EdgeChannel]int),
				upDone:    make(map[lineage.EdgeChannel]int),
				stageDone: make(map[int]bool),
			}
			m.cep = txGetInt(tx, t.r.keyChanEpoch(cs.id), 0)
			m.cursor = txGetInt(tx, t.r.keyCursor(cs.id), 0)
			tn := lineage.TaskName{Stage: cs.id.Stage, Channel: cs.id.Channel, Seq: m.cursor}
			if v, ok := tx.Get(t.r.keyLineage(tn)); ok {
				rec, err := lineage.DecodeRecord(v)
				if err != nil {
					return err
				}
				m.replayRec = &rec
			}
			for e, in := range cs.stage.Inputs {
				up := in.Stage
				allDone := true
				for uc := 0; uc < t.r.par[up]; uc++ {
					ec := lineage.EdgeChannel{Input: e, UpChannel: uc}
					uid := lineage.ChannelID{Stage: up, Channel: uc}
					m.upCursor[ec] = txGetInt(tx, t.r.keyCursor(uid), 0)
					d := txGetInt(tx, t.r.keyDone(uid), -1)
					m.upDone[ec] = d
					if d < 0 {
						allDone = false
					}
				}
				m.stageDone[up] = allDone
			}
			if t.r.cfg.FT == FTCheckpoint {
				if v, ok := tx.Get(t.r.keyCheckpoint(cs.id)); ok {
					ck, err := decodeCheckpoint(v)
					if err != nil {
						return err
					}
					m.checkpoint = &ck
				}
			}
			out[i] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// resetChannel synchronizes in-memory state with the GCS after a rewind
// (or on first touch): fresh operator, cursor and watermark from the GCS.
func (t *taskManager) resetChannel(cs *chanState, meta *chanMeta) error {
	// Rewind cleanup: release the dead operator's accounted memory and
	// delete its spill runs, then sweep stale run files of ANY earlier
	// incarnation of this channel from the local disk (recovery restart
	// must not leak pre-failure spill files).
	if sb, ok := cs.op.(ops.Spillable); ok {
		sb.DropSpill()
	}
	if t.spill != nil {
		t.w.Disk.DeletePrefix(spillChanPrefix(t.r.qid, cs.id))
	}
	cs.cep = meta.cep
	cs.cursor = meta.cursor
	cs.op = nil
	cs.pending = nil
	cs.done = false
	cs.lastCkpt = meta.cursor
	cs.spillOp, cs.spillBytes, cs.spillRuns = nil, 0, 0
	var wmErr error
	var done int
	t.r.gcsView(func(tx *gcs.Txn) error {
		cs.wm, wmErr = txGetWatermark(tx, t.r.keyWatermark(cs.id))
		done = txGetInt(tx, t.r.keyDone(cs.id), -1)
		return nil
	})
	if wmErr != nil {
		return wmErr
	}
	cs.done = done >= 0 && done == cs.cursor && cs.cursor > 0
	if cs.done {
		t.markDone(cs.id)
	}
	if cs.stage.Reader != nil {
		if cs.stage.Reader.Splits != nil {
			// The planner pruned: the cursor walks the survivor list, not
			// the physical split range.
			cs.splits = len(cs.stage.Reader.Splits)
		} else {
			n, err := TableSplits(t.r.cl.ObjStore, cs.stage.Reader.Table)
			if err != nil {
				return err
			}
			cs.splits = n
		}
	}
	return nil
}

// restoreCheckpoint loads the operator state snapshot referenced by the
// checkpoint marker.
func (t *taskManager) restoreCheckpoint(cs *chanState, ck *checkpointMark) error {
	sn, ok := cs.op.(ops.Snapshotter)
	if !ok {
		return fmt.Errorf("engine: channel %s has checkpoint but operator cannot restore", cs.id)
	}
	data, err := t.r.spool.Get(ck.ObjKey)
	if err != nil {
		return err
	}
	if err := sn.Restore(data); err != nil {
		return err
	}
	cs.wm = ck.WM.Clone()
	cs.lastCkpt = ck.Seq
	return nil
}

// normalStep executes a task whose lineage is not yet determined: pick
// inputs dynamically (or per the static policy), run the operator, push,
// back up, and commit the write-ahead lineage.
func (t *taskManager) normalStep(cs *chanState, meta *chanMeta) (bool, error) {
	if cs.stage.Reader != nil {
		return t.readerStep(cs)
	}
	choice, exhausted := t.chooseInput(cs, meta)
	if choice == nil && !exhausted {
		return false, nil // nothing consumable yet; task "exits without executing"
	}
	var p *pendingTask
	started := time.Now()
	if choice == nil {
		// All inputs exhausted: the channel's final task.
		outs, err := cs.op.Finalize()
		if err != nil {
			return false, fmt.Errorf("engine: finalize %s: %w", cs.id, err)
		}
		out, err := batch.Concat(outs)
		if err != nil {
			return false, err
		}
		if out != nil {
			t.chargeCompute(out.ByteSize(), opSharesFor(cs.op, out.NumRows()))
		}
		p = &pendingTask{seq: cs.cursor, rec: lineage.Finalize(), out: out, finalize: true, started: started}
	} else {
		rec := lineage.Consume(choice.ec.Input, choice.ec.UpChannel, choice.from, choice.count)
		out, inRows, inBytes, err := t.consume(cs, rec)
		if err != nil {
			return false, err
		}
		p = &pendingTask{seq: cs.cursor, rec: rec, out: out, started: started, inRows: inRows, inBytes: inBytes}
	}
	cs.pending = p
	return t.finishTask(cs, p, false)
}

// inputChoice is the selected upstream range for one task.
type inputChoice struct {
	ec    lineage.EdgeChannel
	from  int
	count int
}

// chooseInput implements the consumption policy. It returns nil with
// exhausted=true when every input edge is fully consumed (time to
// finalize), or nil with exhausted=false when the task should wait.
func (t *taskManager) chooseInput(cs *chanState, meta *chanMeta) (*inputChoice, bool) {
	// Establish the current phase: the smallest phase with an unexhausted
	// edge. Later-phase inputs are not consumable yet (build before probe).
	curPhase := -1
	allExhausted := true
	for e, in := range cs.stage.Inputs {
		done := true
		for uc := 0; uc < t.r.par[in.Stage]; uc++ {
			ec := lineage.EdgeChannel{Input: e, UpChannel: uc}
			if meta.upDone[ec] < 0 || cs.wm[ec] < meta.upDone[ec] {
				done = false
				break
			}
		}
		if !done {
			allExhausted = false
			if curPhase == -1 || in.Phase < curPhase {
				curPhase = in.Phase
			}
		}
	}
	if allExhausted {
		return nil, true
	}

	var best *inputChoice
	for e, in := range cs.stage.Inputs {
		if in.Phase != curPhase {
			continue
		}
		// Stagewise execution: Spark-style barrier at shuffle boundaries —
		// consume nothing across a wide edge until the entire upstream
		// stage has finished. Narrow (Direct) edges fuse into the same
		// Spark stage and keep streaming, the way Spark fuses chains of
		// narrow dependencies.
		if t.r.cfg.Execution == Stagewise && in.Part.Kind != PartitionDirect && !meta.stageDone[in.Stage] {
			continue
		}
		for uc := 0; uc < t.r.par[in.Stage]; uc++ {
			ec := lineage.EdgeChannel{Input: e, UpChannel: uc}
			wm := cs.wm[ec]
			// Clear retransmissions below the watermark.
			t.w.Flight.DropBelow(t.r.qid, cs.id, e, uc, wm)
			committed := meta.upCursor[ec]
			avail := t.w.Flight.ContiguousFrom(t.r.qid, cs.id, e, uc, wm)
			if committed-wm < avail {
				avail = committed - wm // only lineage-committed inputs count
			}
			if avail <= 0 {
				continue
			}
			upFinished := meta.upDone[ec] >= 0
			var take int
			if t.r.cfg.Dynamic {
				// Consume as much as is available, but don't wake up for
				// dribbles while the producer is still running: tiny tasks
				// would drown the pipeline in per-task overhead. Once the
				// producer finishes, any remainder is consumed. Under
				// admission pressure takeScale coarsens both bounds, so each
				// committed task covers more rows and the head node sees
				// fewer transactions per query.
				scale := int(t.takeScale.Load())
				if scale < 1 {
					scale = 1
				}
				if !upFinished && avail < t.r.cfg.MinTake*scale {
					continue
				}
				take = avail
				if take > t.r.cfg.MaxTake*scale {
					take = t.r.cfg.MaxTake * scale
				}
			} else {
				k := t.r.cfg.StaticBatch
				switch {
				case avail >= k:
					take = k
				case upFinished && wm+avail == meta.upDone[ec]:
					take = avail // final short batch
				default:
					continue // static policy: wait for a full batch
				}
			}
			c := &inputChoice{ec: ec, from: wm, count: take}
			if best == nil || c.count > best.count {
				best = c
			}
		}
	}
	return best, false
}

// consume runs the operator over the chosen inputs and returns the
// concatenated output (nil if no rows) plus the consumed input volume
// (rows and wire bytes, for the task's trace span).
func (t *taskManager) consume(cs *chanState, rec lineage.Record) (out *batch.Batch, inRows, inBytes int64, err error) {
	datas, err := t.w.Flight.Take(t.r.qid, cs.id, rec.Input, rec.UpChannel, rec.FromSeq, rec.Count)
	if err != nil {
		return nil, 0, 0, err
	}
	var outs []*batch.Batch
	for _, d := range datas {
		if len(d) == 0 {
			continue // empty partition: counts for the watermark only
		}
		b, err := batch.Decode(d)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("engine: corrupt partition for %s: %w", cs.id, err)
		}
		if b.NumRows() == 0 {
			continue
		}
		inRows += int64(b.NumRows())
		inBytes += int64(len(d))
		t.chargeCompute(b.ByteSize(), opSharesFor(cs.op, b.NumRows()))
		o, err := cs.op.Consume(rec.Input, b)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("engine: %s consume: %w", cs.id, err)
		}
		outs = append(outs, o...)
	}
	out, err = batch.Concat(outs)
	return out, inRows, inBytes, err
}

// chargeCompute applies the modelled operator-kernel cost for processing
// the given payload, adjusted by the configured kernel efficiency. shares
// is how many partitions execute the work concurrently: each share holds
// its own CPU slot for 1/shares of the payload, so partitioned operators
// finish in ~1/shares the modelled wall time when slots are free — the
// cost-model analogue of the real morsel parallelism in internal/ops.
func (t *taskManager) chargeCompute(bytes int64, shares int) {
	link := t.r.cl.Cost.Compute
	if s := t.r.cfg.ComputeScale; s > 0 && s != 1 {
		link.BytesPerS *= s
		link.Latency = time.Duration(float64(link.Latency) / s)
	}
	if shares <= 1 || t.r.cl.Cost.TimeScale <= 0 {
		// Hold a CPU slot for the duration of the modelled kernel work.
		t.cpu <- struct{}{}
		t.r.cl.Cost.Apply(link, bytes)
		<-t.cpu
		return
	}
	share := bytes / int64(shares)
	var wg sync.WaitGroup
	for i := 0; i < shares; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.cpu <- struct{}{}
			t.r.cl.Cost.Apply(link, share)
			<-t.cpu
		}()
	}
	wg.Wait()
}

// readerStep executes one input-reader task: read the channel's next
// split from the object store. With zone-map pruning the cursor walk
// indexes the survivor list, which is mapped to the physical split number
// before the read — and it is the PHYSICAL number that lineage records, so
// a replay never needs the survivor list to find the same bytes.
func (t *taskManager) readerStep(cs *chanState) (bool, error) {
	p := t.r.par[cs.id.Stage]
	split := cs.id.Channel + cs.cursor*p
	started := time.Now()
	if split >= cs.splits {
		pend := &pendingTask{seq: cs.cursor, rec: lineage.Finalize(), finalize: true, started: started}
		cs.pending = pend
		return t.finishTask(cs, pend, false)
	}
	spec := cs.stage.Reader
	if spec.Splits != nil {
		split = spec.Splits[split]
	}
	b, err := t.readSplit(spec, split)
	if err != nil {
		return false, err
	}
	pend := &pendingTask{seq: cs.cursor, rec: lineage.Read(split), out: b, started: started}
	cs.pending = pend
	return t.finishTask(cs, pend, false)
}

// readSplit reads one physical split for a reader spec, decoding only the
// columns the plan consumes and crediting the skipped column bytes.
func (t *taskManager) readSplit(spec *ReaderSpec, split int) (*batch.Batch, error) {
	b, skipped, err := ReadSplitCols(t.r.cl.ObjStore, spec.Table, split, spec.Cols)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		t.r.count(metrics.ScanBytesSkipped, skipped)
	}
	return b, nil
}

// replayStep re-executes a task under its committed lineage: the task is
// "retracing its footsteps" (§IV-C) and may not choose inputs dynamically.
func (t *taskManager) replayStep(cs *chanState, rec lineage.Record) (bool, error) {
	var p *pendingTask
	started := time.Now()
	switch rec.Kind {
	case lineage.KindRead:
		// rec.Split is physical; the same column projection as the original
		// read keeps the replayed output byte-identical.
		b, err := t.readSplit(cs.stage.Reader, rec.Split)
		if err != nil {
			return false, err
		}
		p = &pendingTask{seq: cs.cursor, rec: rec, out: b, started: started}
	case lineage.KindConsume:
		// All replayed inputs must be present; if replays are still in
		// flight, wait.
		if got := t.w.Flight.ContiguousFrom(t.r.qid, cs.id, rec.Input, rec.UpChannel, rec.FromSeq); got < rec.Count {
			return false, nil
		}
		out, inRows, inBytes, err := t.consume(cs, rec)
		if err != nil {
			return false, err
		}
		p = &pendingTask{seq: cs.cursor, rec: rec, out: out, started: started, inRows: inRows, inBytes: inBytes}
	case lineage.KindFinalize:
		var outs []*batch.Batch
		var err error
		if cs.op != nil {
			outs, err = cs.op.Finalize()
			if err != nil {
				return false, err
			}
		}
		out, err := batch.Concat(outs)
		if err != nil {
			return false, err
		}
		if out != nil {
			t.chargeCompute(out.ByteSize(), opSharesFor(cs.op, out.NumRows()))
		}
		p = &pendingTask{seq: cs.cursor, rec: rec, out: out, finalize: true, started: started}
	}
	cs.pending = p
	t.r.count(metrics.TasksReplayed, 1)
	return t.finishTask(cs, p, true)
}

// finishTask pushes a task's outputs, persists the upstream backup, and
// commits the write-ahead lineage in a single GCS transaction — the core
// of Algorithm 1. isReplay skips re-writing lineage that is already
// committed.
func (t *taskManager) finishTask(cs *chanState, p *pendingTask, isReplay bool) (bool, error) {
	task := lineage.TaskName{Stage: cs.id.Stage, Channel: cs.id.Channel, Seq: p.seq}
	// One encode serves the spool, the collector delivery and the upstream
	// backup. The codec choice is invisible downstream (frames are
	// self-describing and decode to identical bytes), so compressed backups
	// and spools replay exactly like raw ones.
	var encoded []byte
	if p.out != nil && p.out.NumRows() > 0 {
		if t.r.shuffleCompress {
			encoded = batch.EncodeCompressed(p.out)
		} else {
			encoded = batch.Encode(p.out)
		}
	}

	// Spool mode: persist the partition durably before it can be consumed.
	// Only exchange (wide-edge) outputs spool; fused narrow pipelines
	// don't materialize, which is why the paper's category I queries see
	// little spooling after aggregation pushdown (§V-C).
	if t.r.cfg.FT == FTSpool && t.r.spooled[cs.id.Stage] && !isReplay {
		spoolKey := "spool/" + task.String()
		if !t.r.spool.Has(spoolKey) {
			if err := t.r.spool.Put(spoolKey, encoded); err != nil {
				return false, err
			}
			t.r.count(metrics.SpoolWriteBytes, int64(len(encoded)))
		}
	}

	// Push results downstream. Per Algorithm 1, a failed push (dead
	// consumer) aborts the task without committing; the pending outputs
	// are retried after recovery re-places the consumer. Push failures
	// are transient by construction, never fatal.
	var pushStart time.Time
	if t.r.rec != nil {
		pushStart = time.Now()
	}
	if err := t.pushOutputs(cs, task, p.out, encoded); err != nil {
		return false, nil
	}
	if t.r.rec != nil {
		t.r.rec.Record(trace.Span{Kind: trace.KindPush, Replay: isReplay, Worker: int(t.w.ID),
			Stage: cs.id.Stage, Channel: cs.id.Channel, Seq: p.seq, Epoch: cs.cep,
			Start: pushStart, Dur: time.Since(pushStart), OutBytes: int64(len(encoded))})
	}

	// Upstream backup: store outputs on local disk so consumers can be
	// re-fed after someone else's failure. Reader outputs are backed up
	// too (Figure 5 shows stage-0 partitions replayed from TaskManagers);
	// only partitions whose backup died with its worker fall back to
	// Algorithm 2's "input task" S3 re-read.
	needBackup := t.r.cfg.FT == FTWriteAheadLineage || t.r.cfg.FT == FTCheckpoint
	if needBackup {
		if err := t.w.Disk.Write(backupKey(t.r.qid, task), encoded); err != nil {
			return false, err
		}
		t.r.count(metrics.BackupWriteBytes, int64(len(encoded)))
	}

	// Commit: lineage + cursor + watermark (+ done marker) atomically.
	// With group commit enabled the write set is handed to the cluster's
	// shared flusher, which folds commits from many channels — across every
	// admitted query — into one shared GCS transaction; commit-before-ack
	// ordering is preserved because this call still blocks until the flush
	// containing it has been applied.
	wmAfter := cs.wm
	if p.rec.Kind == lineage.KindConsume {
		wmAfter = cs.wm.Clone()
		wmAfter[lineage.EdgeChannel{Input: p.rec.Input, UpChannel: p.rec.UpChannel}] += p.rec.Count
	}
	var err error
	if t.r.gc != nil {
		err = t.r.gc.commit(&commitReq{
			r:        t.r,
			hold:     t.r.flushEvery,
			alive:    t.w.Alive,
			workerID: int(t.w.ID),
			id:       cs.id,
			cep:      cs.cep,
			stepGep:  cs.stepGep,
			task:     task,
			rec:      p.rec,
			wmAfter:  wmAfter,
			finalize: p.finalize,
			isReplay: isReplay,
		})
	} else {
		err = t.r.gcsUpdate(func(tx *gcs.Txn) error {
			if !t.w.Alive() {
				return gcs.ErrAborted
			}
			if txGetInt(tx, t.r.keyBarrier(), 0) != 0 {
				return gcs.ErrAborted // recovery holds the GCS lock
			}
			if txGetInt(tx, t.r.keyChanEpoch(cs.id), 0) != cs.cep {
				return gcs.ErrAborted // channel was rewound under us
			}
			if txGetInt(tx, t.r.keyGlobalEpoch(), 0) != cs.stepGep {
				// Placement may have changed since our pushes; retry with a
				// fresh view so no partition lands on a stale worker.
				return gcs.ErrAborted
			}
			if !isReplay && t.r.cfg.FT != FTNone {
				tx.Put(t.r.keyLineage(task), p.rec.Encode())
				t.r.count(metrics.LineageRecords, 1)
			}
			txPutInt(tx, t.r.keyCursor(cs.id), p.seq+1)
			txPutWatermark(tx, t.r.keyWatermark(cs.id), wmAfter)
			txPutInt(tx, t.r.keyPartDir(task), int(t.w.ID))
			if p.finalize {
				txPutInt(tx, t.r.keyDone(cs.id), p.seq+1)
			}
			return nil
		})
	}
	if err != nil {
		if err == gcs.ErrAborted {
			return false, nil // keep pending; retried after barrier/rewind
		}
		return false, err
	}

	// Post-commit bookkeeping.
	if p.rec.Kind == lineage.KindConsume {
		t.w.Flight.Drop(t.r.qid, cs.id, p.rec.Input, p.rec.UpChannel, p.rec.FromSeq, p.rec.Count)
	}
	cs.wm = wmAfter
	cs.cursor = p.seq + 1
	cs.pending = nil
	if p.finalize {
		cs.done = true
		t.markDone(cs.id)
		// The channel is complete: its spill runs (if any survive the
		// operator's own finalize cleanup) are garbage now.
		if sb, ok := cs.op.(ops.Spillable); ok {
			sb.DropSpill()
		}
	}
	t.r.count(metrics.TasksExecuted, 1)
	lat := time.Since(p.started)
	t.r.hTask.observe(int64(lat))
	if t.r.rec != nil {
		var spillB, spillR int64
		if cs.spillOp != nil {
			wb, wr := cs.spillOp.WrittenBytes(), cs.spillOp.WrittenRuns()
			spillB, spillR = wb-cs.spillBytes, wr-cs.spillRuns
			cs.spillBytes, cs.spillRuns = wb, wr
		}
		var outRows int64
		if p.out != nil {
			outRows = int64(p.out.NumRows())
		}
		t.r.rec.Record(trace.Span{Kind: trace.KindTask, Replay: isReplay, Worker: int(t.w.ID),
			Stage: cs.id.Stage, Channel: cs.id.Channel, Seq: p.seq, Epoch: cs.cep,
			Start: p.started, Dur: lat,
			InRows: p.inRows, InBytes: p.inBytes,
			OutRows: outRows, OutBytes: int64(len(encoded)),
			SpillBytes: spillB, SpillRuns: spillR})
	}

	if t.r.cfg.FT == FTCheckpoint && !p.finalize {
		t.maybeCheckpoint(cs)
	}
	return true, nil
}

// pushOutputs partitions a task's output per consumer edge and pushes the
// pieces to the Flight servers of the consuming channels' workers. Output-
// stage tasks deliver to the head-node collector instead. Empty partitions
// are still pushed: watermarks count them.
func (t *taskManager) pushOutputs(cs *chanState, task lineage.TaskName, out *batch.Batch, encoded []byte) error {
	edges := t.r.plan.Consumers(cs.id.Stage)
	if len(edges) == 0 {
		// Result spooling (default): keep the payload on this worker and
		// hand the head only a manifest, so N concurrent queries' result
		// traffic doesn't serialize through the head-node link. Empty
		// partitions carry no bytes and are delivered directly — a fetch
		// round-trip for them would be pure overhead.
		if t.r.cfg.DisableResultSpool || len(encoded) == 0 {
			if !t.r.sink.Deliver(task, encoded, cs.cep) {
				// Cursor backpressure: the head-node buffer is full. Keep the
				// task pending (uncommitted) and retry once the consumer pulls.
				return errCollectorFull
			}
			t.r.count(metrics.HeadResultBytes, int64(len(encoded)))
			return nil
		}
		if err := t.w.Flight.SpoolResult(t.r.qid, task, encoded, cs.cep); err != nil {
			return err // worker dying: transient, like a failed push
		}
		if !t.r.sink.DeliverSpooled(task, int(t.w.ID), int64(len(encoded)), cs.cep) {
			return errCollectorFull
		}
		t.r.count(metrics.HeadResultBytes, resultManifestBytes)
		return nil
	}
	for _, e := range edges {
		pieces, err := t.partitionFor(out, e, cs.id.Channel)
		if err != nil {
			return err
		}
		for cc, data := range pieces {
			dest := lineage.ChannelID{Stage: e.To, Channel: cc}
			wid, err := t.r.placement(dest)
			if err != nil {
				return err
			}
			dw := t.r.cl.Worker(cluster.WorkerID(wid))
			local := dw.ID == t.w.ID || len(data) == 0
			if err := dw.Flight.Push(flight.Partition{
				Query: t.r.qid, From: task, Dest: dest, Input: e.Input, Data: data,
				Epoch: cs.cep, Local: local,
			}); err != nil {
				return err
			}
			t.r.count(metrics.PartitionsMoved, 1)
			if !local {
				// The flight server counts network traffic into the cluster
				// collector; attribute it to this query as well.
				t.r.qmet.Add(metrics.NetworkBytes, int64(len(data)))
				t.r.qmet.Add(metrics.NetworkPushes, 1)
			}
		}
	}
	return nil
}

// errCollectorFull is the transient push failure raised when the streaming
// cursor's head-node buffer is full; like a dead-consumer push failure it
// keeps the task pending instead of failing the query.
var errCollectorFull = fmt.Errorf("engine: head-node cursor buffer full")

// resultManifestBytes is the modelled wire size of a spooled-result
// manifest (task name + worker + size) — what the head receives instead of
// the payload when result spooling is on.
const resultManifestBytes = 48

// partitionFor splits an output batch for one consumer edge, returning one
// encoded payload per consumer channel (nil payload = empty partition).
// prodChannel is the producing channel (used by direct edges). Routing
// (HashPartition over the key encoding) happens on the decoded batch and
// is untouched by the codec choice — compression only changes the bytes a
// partition travels as, never which partition a row lands in.
func (t *taskManager) partitionFor(out *batch.Batch, e Edge, prodChannel int) ([][]byte, error) {
	n := t.r.par[e.To]
	pieces := make([][]byte, n)
	if out == nil || out.NumRows() == 0 {
		return pieces, nil
	}
	encode := func(b *batch.Batch) []byte {
		wire := batch.Encode
		if t.r.shuffleCompress {
			wire = batch.EncodeCompressed
		}
		enc := wire(b)
		t.r.count(metrics.ShuffleRawBytes, int64(batch.RawEncodedSize(b)))
		t.r.count(metrics.ShuffleWireBytes, int64(len(enc)))
		return enc
	}
	switch e.Part.Kind {
	case PartitionSingle:
		pieces[0] = encode(out)
	case PartitionDirect:
		pieces[prodChannel%n] = encode(out)
	case PartitionBroadcast:
		enc := encode(out)
		for i := range pieces {
			pieces[i] = enc
		}
	case PartitionHash:
		for _, k := range e.Part.Keys {
			if out.Schema.Index(k) < 0 {
				return nil, fmt.Errorf("engine: partition key %q missing from output schema %s", k, out.Schema)
			}
		}
		parts := out.HashPartition(e.Part.Keys, n)
		for i, pb := range parts {
			if pb.NumRows() > 0 {
				pieces[i] = encode(pb)
			}
		}
	}
	return pieces, nil
}

// maybeCheckpoint snapshots the operator state every CheckpointEveryTasks
// committed tasks (FTCheckpoint). The snapshot goes to durable storage —
// this is exactly the growing-state cost §V-C measures.
func (t *taskManager) maybeCheckpoint(cs *chanState) {
	if cs.op == nil {
		return
	}
	sn, ok := cs.op.(ops.Snapshotter)
	if !ok {
		return
	}
	every := t.r.cfg.CheckpointEveryTasks
	if every <= 0 {
		every = 4
	}
	if cs.cursor-cs.lastCkpt < every {
		return
	}
	data, err := sn.Snapshot()
	if err != nil || len(data) == 0 {
		return
	}
	objKey := fmt.Sprintf("ckpt/%s/%s/%d", t.r.qid, cs.id, cs.cursor)
	if err := t.r.spool.Put(objKey, data); err != nil {
		return
	}
	t.r.count(metrics.CheckpointBytes, int64(len(data)))
	mark := checkpointMark{Seq: cs.cursor, ObjKey: objKey, WM: cs.wm}
	t.r.gcsUpdate(func(tx *gcs.Txn) error {
		if txGetInt(tx, t.r.keyChanEpoch(cs.id), 0) != cs.cep {
			return gcs.ErrAborted
		}
		tx.Put(t.r.keyCheckpoint(cs.id), encodeCheckpoint(mark))
		return nil
	})
	cs.lastCkpt = cs.cursor
}

// runReplays drains this worker's replay queue: re-pushing backed-up
// partitions (rp/) and re-reading input splits (rpi/) for rewound
// consumers. These are the light-blue recovery tasks of Figure 5.
func (t *taskManager) runReplays() (ran, drained bool) {
	prefixRp := fmt.Sprintf("%srp/%d/", t.r.keyNS(), t.w.ID)
	prefixRpi := fmt.Sprintf("%srpi/%d/", t.r.keyNS(), t.w.ID)
	var rp, rpi []string
	dests := make(map[string][]byte)
	var gep int
	t.r.gcsView(func(tx *gcs.Txn) error {
		gep = txGetInt(tx, t.r.keyGlobalEpoch(), 0)
		rp = tx.List(prefixRp)
		rpi = tx.List(prefixRpi)
		for _, k := range append(append([]string(nil), rp...), rpi...) {
			if v, ok := tx.Get(k); ok {
				dests[k] = v
			}
		}
		return nil
	})
	for _, k := range rp {
		if t.runOneReplay(k, strings.TrimPrefix(k, prefixRp), dests[k], false, gep) {
			ran = true
		}
	}
	for _, k := range rpi {
		if t.runOneReplay(k, strings.TrimPrefix(k, prefixRpi), dests[k], true, gep) {
			ran = true
		}
	}
	return ran, len(rp)+len(rpi) == 0
}

// runOneReplay executes a single replay entry and removes it from the GCS.
func (t *taskManager) runOneReplay(fullKey, rest string, destsRaw []byte, fromSource bool, gep int) bool {
	task, err := lineage.ParseTaskName(rest)
	if err != nil {
		return false
	}
	var replayStart time.Time
	if t.r.rec != nil {
		replayStart = time.Now()
	}
	dests, err := parseReplayDests(destsRaw)
	if err != nil || len(dests) == 0 {
		return false
	}
	var out *batch.Batch
	if fromSource {
		// Re-read the split named by the committed lineage.
		var rec lineage.Record
		found := false
		t.r.gcsView(func(tx *gcs.Txn) error {
			if v, ok := tx.Get(t.r.keyLineage(task)); ok {
				if r2, err := lineage.DecodeRecord(v); err == nil {
					rec, found = r2, true
				}
			}
			return nil
		})
		if !found {
			return false
		}
		switch rec.Kind {
		case lineage.KindRead:
			st := t.r.plan.Stages[task.Stage]
			if st.Reader == nil {
				return false
			}
			// Same physical split, same column projection as the original
			// read — the replayed output is byte-identical.
			b, err := t.readSplit(st.Reader, rec.Split)
			if err != nil {
				return false
			}
			out = b
		case lineage.KindFinalize:
			// A reader's final task produced an empty partition; re-push
			// the emptiness so the consumer's watermark can pass it.
			out = nil
		default:
			return false
		}
	} else if t.r.cfg.FT == FTSpool {
		data, err := t.r.spool.Get("spool/" + task.String())
		if err != nil {
			return false
		}
		if len(data) > 0 {
			b, err := batch.Decode(data)
			if err != nil {
				return false
			}
			out = b
		}
	} else {
		data, err := t.w.Disk.Read(backupKey(t.r.qid, task))
		if err != nil {
			return false // disk lost; the next recovery pass reroutes
		}
		if len(data) > 0 {
			b, err := batch.Decode(data)
			if err != nil {
				return false
			}
			out = b
		}
	}

	// Push only the pieces destined for the rewound consumers (one per
	// input edge feeding each destination stage), re-reading the backup
	// once for all of them.
	pushed := false
	for _, dest := range dests {
		for _, e := range t.r.plan.Consumers(task.Stage) {
			if e.To != dest.Stage {
				continue
			}
			pieces, err := t.partitionFor(out, e, task.Channel)
			if err != nil {
				return false
			}
			wid, err := t.r.placement(dest)
			if err != nil {
				return false
			}
			dw := t.r.cl.Worker(cluster.WorkerID(wid))
			data := pieces[dest.Channel]
			local := dw.ID == t.w.ID || len(data) == 0
			if err := dw.Flight.Push(flight.Partition{
				Query: t.r.qid, From: task, Dest: dest, Input: e.Input, Data: data,
				Epoch: flight.EpochCommitted, Local: local,
			}); err != nil {
				return false
			}
			if !local {
				t.r.qmet.Add(metrics.NetworkBytes, int64(len(data)))
				t.r.qmet.Add(metrics.NetworkPushes, 1)
			}
			pushed = true
		}
	}
	if !pushed {
		return false
	}
	t.r.count(metrics.RecoveryReplays, 1)
	if t.r.rec != nil {
		// The recovery re-push of a backed-up partition (Figure 5's light-
		// blue recovery task), stamped with the recovery's global epoch.
		t.r.rec.Record(trace.Span{Kind: trace.KindPush, Replay: true, Worker: int(t.w.ID),
			Stage: task.Stage, Channel: task.Channel, Seq: task.Seq, Epoch: gep,
			Start: replayStart, Dur: time.Since(replayStart)})
	}
	err = t.r.gcsUpdate(func(tx *gcs.Txn) error {
		if txGetInt(tx, t.r.keyGlobalEpoch(), 0) != gep {
			return gcs.ErrAborted // placement changed; redo with a fresh view
		}
		tx.Delete(fullKey)
		return nil
	})
	return err == nil
}
