package engine

import "quokka/internal/cluster"

// RemoteExec dispatches a query's task-manager execution to out-of-process
// workers. When installed on a cluster (SetRemoteExec), Runner.execute
// stops spawning local task managers: it ships each live worker the query's
// WorkerQuerySpec and lets the worker processes run their own task-manager
// threads against the head's wire-served GCS, flight mailboxes, object
// store and result sink. The head keeps everything else — admission,
// seeding, coordination, recovery, the collector, and teardown.
type RemoteExec interface {
	// StartQuery ships the query to every live worker process and starts
	// their task-manager threads. The returned stop function tells the
	// workers to stop and blocks until each live one has acknowledged
	// (shipping its trace spans back); it must be safe to call exactly once.
	StartQuery(r *Runner) (stop func(), err error)
}

// SetRemoteExec installs (or, with nil, removes) the cluster's remote
// execution hook. Queries submitted afterwards observe it.
func SetRemoteExec(cl *cluster.Cluster, rx RemoteExec) {
	s := sharedFor(cl)
	s.mu.Lock()
	s.remoteExec = rx
	s.mu.Unlock()
}

// remoteExecFor returns the installed remote execution hook, nil for
// in-memory execution.
func (s *clusterShared) remoteExecFor() RemoteExec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remoteExec
}
