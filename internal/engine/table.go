package engine

import (
	"fmt"
	"strconv"

	"quokka/internal/batch"
	"quokka/internal/storage"
)

// Tables live in the object store as numbered splits of encoded batches:
//
//	tbl/<name>/meta  number of splits
//	tbl/<name>/<i>   encoded batch for split i
//
// Splits are the reader stages' unit of work, like Parquet row groups on
// S3 in the paper's setup.

func tableMetaKey(name string) string         { return "tbl/" + name + "/meta" }
func tableSplitKey(name string, i int) string { return fmt.Sprintf("tbl/%s/%d", name, i) }

// WriteTable stores batches as the splits of a table, without I/O cost
// (dataset preparation is not part of the measured query).
func WriteTable(store *storage.ObjectStore, name string, splits []*batch.Batch) {
	for i, b := range splits {
		store.PutFree(tableSplitKey(name, i), batch.Encode(b))
	}
	store.PutFree(tableMetaKey(name), []byte(strconv.Itoa(len(splits))))
}

// TableSplits returns the number of splits of a table.
func TableSplits(store *storage.ObjectStore, name string) (int, error) {
	v, err := store.Get(tableMetaKey(name))
	if err != nil {
		return 0, fmt.Errorf("engine: table %q not found: %w", name, err)
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return 0, fmt.Errorf("engine: bad meta for table %q: %w", name, err)
	}
	return n, nil
}

// ReadSplit reads and decodes one split, paying the object-store read cost.
func ReadSplit(store *storage.ObjectStore, name string, i int) (*batch.Batch, error) {
	v, err := store.Get(tableSplitKey(name, i))
	if err != nil {
		return nil, fmt.Errorf("engine: split %d of table %q: %w", i, name, err)
	}
	return batch.Decode(v)
}
