package engine

import (
	"fmt"
	"strconv"

	"quokka/internal/batch"
	"quokka/internal/storage"
)

// Tables live in the object store as numbered splits of encoded batches
// plus catalog metadata:
//
//	tbl/<name>/meta    number of splits
//	tbl/<name>/rows    total row count (planner statistics)
//	tbl/<name>/schema  zero-row encoded batch carrying the table schema
//	tbl/<name>/<i>     encoded batch for split i (QBA2 compressed)
//	tbl/<name>/zm/<i>  zone map for split i (min/max per column, row count)
//
// Splits are the reader stages' unit of work, like Parquet row groups on
// S3 in the paper's setup. The rows/schema entries are what the query
// planner's catalog reads: schemas drive plan-time column and type
// checking, row counts drive automatic broadcast-join selection, and the
// per-split zone maps drive split pruning: the planner folds scan
// predicates against each split's value ranges and drops splits that
// cannot match before stage scheduling.

// tablePrefix is the blessed construction site of the "tbl/" namespace
// (nskey analyzer): every catalog key derives from it.
func tablePrefix(name string) string { return "tbl/" + name + "/" }

func tableMetaKey(name string) string   { return tablePrefix(name) + "meta" }
func tableRowsKey(name string) string   { return tablePrefix(name) + "rows" }
func tableSchemaKey(name string) string { return tablePrefix(name) + "schema" }
func tableSplitKey(name string, i int) string {
	return tablePrefix(name) + strconv.Itoa(i)
}
func tableZoneMapKey(name string, i int) string {
	return tablePrefix(name) + "zm/" + strconv.Itoa(i)
}

// WriteTable stores batches as the splits of a table, without I/O cost
// (dataset preparation is not part of the measured query). Splits must be
// non-empty so the schema metadata can be recorded — represent an empty
// table as one zero-row batch (both loaders already do), or the planner
// catalog will not see the table.
func WriteTable(store storage.Objects, name string, splits []*batch.Batch) {
	rows := 0
	for i, b := range splits {
		store.PutFree(tableSplitKey(name, i), batch.EncodeCompressed(b))
		store.PutFree(tableZoneMapKey(name, i), batch.ComputeZoneMap(b).Encode())
		rows += b.NumRows()
	}
	store.PutFree(tableMetaKey(name), []byte(strconv.Itoa(len(splits))))
	store.PutFree(tableRowsKey(name), []byte(strconv.Itoa(rows)))
	if len(splits) > 0 {
		empty := batch.NewBuilder(splits[0].Schema, 0).Build()
		store.PutFree(tableSchemaKey(name), batch.Encode(empty))
	}
}

// TableRowCount returns the table's total row count from the catalog
// metadata. Metadata reads are free: planning is not part of the measured
// query.
func TableRowCount(store storage.Objects, name string) (int64, error) {
	v, err := store.GetFree(tableRowsKey(name))
	if err != nil {
		return 0, fmt.Errorf("engine: table %q has no row-count metadata: %w", name, err)
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return 0, fmt.Errorf("engine: bad row count for table %q: %w", name, err)
	}
	return int64(n), nil
}

// TableSchema returns the table's schema from the catalog metadata.
func TableSchema(store storage.Objects, name string) (*batch.Schema, error) {
	v, err := store.GetFree(tableSchemaKey(name))
	if err != nil {
		return nil, fmt.Errorf("engine: table %q not found: %w", name, err)
	}
	b, err := batch.Decode(v)
	if err != nil {
		return nil, fmt.Errorf("engine: bad schema for table %q: %w", name, err)
	}
	return b.Schema, nil
}

// TableSplits returns the number of splits of a table.
func TableSplits(store storage.Objects, name string) (int, error) {
	v, err := store.Get(tableMetaKey(name))
	if err != nil {
		return 0, fmt.Errorf("engine: table %q not found: %w", name, err)
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return 0, fmt.Errorf("engine: bad meta for table %q: %w", name, err)
	}
	return n, nil
}

// TableZoneMaps returns the per-split zone maps of a table, indexed by
// split number. Tables written before zone maps existed (or stores that
// lost the entries) return an error; planners treat that as "no stats" and
// skip pruning. Metadata reads are free, like the rest of the catalog.
func TableZoneMaps(store storage.Objects, name string) ([]*batch.ZoneMap, error) {
	v, err := store.GetFree(tableMetaKey(name))
	if err != nil {
		return nil, fmt.Errorf("engine: table %q not found: %w", name, err)
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return nil, fmt.Errorf("engine: bad meta for table %q: %w", name, err)
	}
	zms := make([]*batch.ZoneMap, n)
	for i := 0; i < n; i++ {
		raw, err := store.GetFree(tableZoneMapKey(name, i))
		if err != nil {
			return nil, fmt.Errorf("engine: table %q split %d has no zone map: %w", name, i, err)
		}
		zm, err := batch.DecodeZoneMap(raw)
		if err != nil {
			return nil, fmt.Errorf("engine: table %q split %d: %w", name, i, err)
		}
		zms[i] = zm
	}
	return zms, nil
}

// ReadSplit reads and decodes one split, paying the object-store read cost.
func ReadSplit(store storage.Objects, name string, i int) (*batch.Batch, error) {
	b, _, err := ReadSplitCols(store, name, i, nil)
	return b, err
}

// ReadSplitCols reads one split keeping only the named columns (nil =
// all), paying the full object-store read cost — the split object still
// moves whole — but skipping the decode of dropped column payloads.
// skipped reports the encoded bytes whose decode was avoided.
func ReadSplitCols(store storage.Objects, name string, i int, cols []string) (*batch.Batch, int64, error) {
	v, err := store.Get(tableSplitKey(name, i))
	if err != nil {
		return nil, 0, fmt.Errorf("engine: split %d of table %q: %w", i, name, err)
	}
	return batch.DecodeProject(v, cols)
}
