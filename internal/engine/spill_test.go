package engine

import (
	"fmt"
	"testing"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/expr"
	"quokka/internal/metrics"
	"quokka/internal/ops"
)

// Engine-level memory governance: queries under a per-worker budget spill
// operator state through the workers' local disks and still produce
// byte-identical results — across budgets (unlimited / tight /
// pathological), operator parallelism, and worker failures — with no spill
// file outliving its query.
//
// The float aggregates below use integer-valued floats, whose summation is
// exact in any order: the engine's dynamic input choice already reorders
// rows run-to-run, so cross-RUN byte identity requires order-insensitive
// values. Bit-exactness of float summation ORDER under spilling is pinned
// separately at the operator level (ops.TestAggSpillMatchesInMemory).

// spillTables: a build table big enough to dwarf tight budgets (distinct
// string-tagged keys) and a probe side with multi-matches and misses.
func spillTables(buildRows, probeRows int) map[string][]*batch.Batch {
	bs := batch.NewSchema(batch.F("k", batch.Int64), batch.F("tag", batch.String))
	var builds []*batch.Batch
	per := 200
	for lo := 0; lo < buildRows; lo += per {
		hi := lo + per
		if hi > buildRows {
			hi = buildRows
		}
		ks := make([]int64, hi-lo)
		ts := make([]string, hi-lo)
		for j := range ks {
			ks[j] = int64(lo + j)
			ts[j] = fmt.Sprintf("tag-%03d", (lo+j)%97)
		}
		builds = append(builds, batch.MustNew(bs, []*batch.Column{
			batch.NewIntColumn(ks), batch.NewStringColumn(ts)}))
	}
	ps := batch.NewSchema(batch.F("pk", batch.Int64), batch.F("v", batch.Float64))
	var probes []*batch.Batch
	for lo := 0; lo < probeRows; lo += per {
		hi := lo + per
		if hi > probeRows {
			hi = probeRows
		}
		ks := make([]int64, hi-lo)
		vs := make([]float64, hi-lo)
		for j := range ks {
			i := lo + j
			ks[j] = int64((i * 7) % (buildRows + buildRows/4)) // some misses
			vs[j] = float64(i % 11)                            // exact in any summation order
		}
		probes = append(probes, batch.MustNew(ps, []*batch.Column{
			batch.NewIntColumn(ks), batch.NewFloatColumn(vs)}))
	}
	return map[string][]*batch.Batch{"build": builds, "probe": probes}
}

// spillJoinAggPlan: probe JOIN build ON pk=k, grouped by tag.
func spillJoinAggPlan() *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read-build", Reader: &ReaderSpec{Table: "build"}},
		&Stage{ID: 1, Name: "read-probe", Reader: &ReaderSpec{Table: "probe"}},
		&Stage{ID: 2, Name: "join",
			Op: ops.NewHashJoinSpec(ops.InnerJoin, []string{"k"}, []string{"pk"}),
			Inputs: []StageInput{
				{Stage: 0, Part: Hash("k"), Phase: 0},
				{Stage: 1, Part: Hash("pk"), Phase: 1},
			}},
		&Stage{ID: 3, Name: "agg", Parallelism: 1,
			Op:     ops.NewHashAggSpec([]string{"tag"}, ops.CountStar("c"), ops.Sum("sv", expr.C("v"))),
			Inputs: []StageInput{{Stage: 2, Part: Single()}}},
	)
}

// spillSortPlan: full ORDER BY over the numbers table.
func spillSortPlan() *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read", Reader: &ReaderSpec{Table: "numbers"}},
		&Stage{ID: 1, Name: "sort", Parallelism: 1,
			Op:     ops.NewSortSpec(ops.Desc("v"), ops.Asc("id")),
			Inputs: []StageInput{{Stage: 0, Part: Single()}}},
	)
}

func assertNoSpillFiles(t *testing.T, cl *cluster.Cluster, label string) {
	t.Helper()
	for _, w := range cl.Workers {
		if !w.Alive() {
			continue
		}
		if n := w.Disk.UsedBytesPrefix("spill/"); n != 0 {
			t.Errorf("%s: worker %d leaked %d spill bytes: %v",
				label, w.ID, n, w.Disk.List("spill/"))
		}
	}
}

// TestSpillBudgetSweepByteIdentical is the central engine guarantee: the
// same query under unlimited, tight, and pathological single-batch
// budgets — at serial and partition-parallel operators — produces
// byte-identical results, actually spills when constrained, and leaves no
// spill files behind.
func TestSpillBudgetSweepByteIdentical(t *testing.T) {
	tables := spillTables(3000, 4000)
	plans := map[string]func() *Plan{
		"joinAgg": spillJoinAggPlan,
		"sort":    spillSortPlan,
	}
	numbers := map[string][]*batch.Batch{"numbers": numbersTable(3000, 12)}
	for name, mkPlan := range plans {
		data := tables
		if name == "sort" {
			data = numbers
		}
		for _, par := range []int{1, 4} {
			var want []byte
			for _, budget := range []int64{0, 16_000, 600} {
				cfg := DefaultConfig()
				cfg.Parallelism = par
				cfg.MemoryBudget = budget
				cl := testCluster(t, 4, data)
				out, rep := runPlan(t, cl, mkPlan(), cfg)
				enc := batch.Encode(out)
				if budget == 0 {
					want = enc
					if rep.Metrics[metrics.SpillRuns] != 0 {
						t.Errorf("%s/par%d: unlimited budget spilled", name, par)
					}
				} else {
					if string(enc) != string(want) {
						t.Errorf("%s/par%d/budget%d: result differs from unlimited-budget run",
							name, par, budget)
					}
					if rep.Metrics[metrics.SpillRuns] == 0 {
						t.Errorf("%s/par%d/budget%d: expected spilling, saw none", name, par, budget)
					}
					if rep.Metrics[metrics.SpillWriteBytes] == 0 {
						t.Errorf("%s/par%d/budget%d: spill bytes not counted: %v",
							name, par, budget, rep.Metrics)
					}
					// spill.partitions tracks hash-partition fan-out only
					// (external-sort runs are sequential, not partitions).
					if name == "joinAgg" && rep.Metrics[metrics.SpillPartitions] == 0 {
						t.Errorf("%s/par%d/budget%d: spill partitions not counted: %v",
							name, par, budget, rep.Metrics)
					}
				}
				assertNoSpillFiles(t, cl, fmt.Sprintf("%s/par%d/budget%d", name, par, budget))
			}
		}
	}
}

// TestSpillPeakBoundedByBudget: at a workable budget the accounted
// high-water mark respects it (forced residency only happens at
// pathological budgets, where hash partitioning cannot help further).
func TestSpillPeakBoundedByBudget(t *testing.T) {
	const budget = 16_000
	cfg := DefaultConfig()
	cfg.MemoryBudget = budget
	cl := testCluster(t, 4, spillTables(3000, 4000))
	_, rep := runPlan(t, cl, spillJoinAggPlan(), cfg)
	if rep.Metrics[metrics.SpillRuns] == 0 {
		t.Fatal("expected spilling at tight budget")
	}
	if peak := rep.Metrics[metrics.SpillPeakBytes]; peak > budget {
		t.Errorf("accounted peak %d exceeds per-worker budget %d", peak, budget)
	}
}

// TestSpillNoLeakAcrossRepeatedQueries: with fault tolerance off, spill
// runs are the ONLY local-disk writes, so total UsedBytes must return to
// zero after every query — repeated runs on one cluster cannot
// accumulate anything. (Under FT modes, bk/ backups legitimately persist
// and their task counts jitter with dynamic scheduling, so the no-leak
// assertion there is the spill-prefix check in the other tests.)
func TestSpillNoLeakAcrossRepeatedQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FT = FTNone
	cfg.MemoryBudget = 16_000
	cl := testCluster(t, 4, spillTables(3000, 4000))
	var first []byte
	for i := 0; i < 3; i++ {
		out, rep := runPlan(t, cl, spillJoinAggPlan(), cfg)
		if rep.Metrics[metrics.SpillRuns] == 0 {
			t.Fatal("expected spilling")
		}
		for _, w := range cl.Workers {
			if n := w.Disk.UsedBytes(); n != 0 {
				t.Errorf("run %d: worker %d holds %d disk bytes after completion: %v",
					i, w.ID, n, w.Disk.List(""))
			}
		}
		if i == 0 {
			first = batch.Encode(out)
		} else if string(batch.Encode(out)) != string(first) {
			t.Error("repeated query changed its result")
		}
	}
}

// TestSpillFaultMidQuery: a worker dies while operators are actively
// spilling; recovery replays lineage onto fresh operators (with fresh
// spill namespaces — stale pre-failure run files are on disk and must be
// ignored and swept) and the result is byte-identical to the failure-free
// unlimited-budget run.
func TestSpillFaultMidQuery(t *testing.T) {
	tables := spillTables(3000, 4000)
	clean := testCluster(t, 4, tables)
	wantOut, _ := runPlan(t, clean, spillJoinAggPlan(), DefaultConfig())
	want := batch.Encode(wantOut)

	for _, par := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		cfg.MemoryBudget = 16_000
		faulty := testCluster(t, 4, tables)
		out, rep, err := runWithFailure(t, faulty, spillJoinAggPlan(), cfg, 1, 6)
		if err != nil {
			t.Fatalf("par%d: %v", par, err)
		}
		if rep.Recoveries == 0 {
			t.Errorf("par%d: worker killed but no recovery ran", par)
		}
		if rep.Metrics[metrics.SpillRuns] == 0 {
			t.Errorf("par%d: expected spilling during the faulty run", par)
		}
		if got := batch.Encode(out); string(got) != string(want) {
			t.Errorf("par%d: result with failure differs from failure-free unlimited run", par)
		}
		assertNoSpillFiles(t, faulty, fmt.Sprintf("fault/par%d", par))
	}
}
