package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"quokka/internal/cluster"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
	"quokka/internal/trace"
)

// This file is the worker-process side of process mode: a Runner built
// from a wire-shipped WorkerQuerySpec instead of NewRunner, executing ONE
// worker's task-manager threads against the head's remote GCS, flight
// mailboxes, object store and result sink. Coordination, recovery, the
// collector and teardown stay on the head; the worker's only jobs are the
// Algorithm 1 task protocol and the replay queue.

// minWorkerPollInterval floors the task-manager poll interval inside a
// worker process. In-memory polls are nanosecond map reads; over the wire
// each version probe is a head round trip, and sub-millisecond polling
// from W workers x ThreadsPerWorker threads would saturate the head with
// no-progress probes.
const minWorkerPollInterval = 2 * time.Millisecond

// newWorkerRunner builds the worker-process twin of the head's Runner for
// one query. It deliberately does NOT mint a query id, pass admission, or
// attach a collector-backed sink: the id, the admission slot and the
// collector live on the head; the spec carries the id and the sink relays
// deliveries to it.
func newWorkerRunner(cl *cluster.Cluster, spec *WorkerQuerySpec, sink ResultSink) (*Runner, error) {
	cfg := spec.Cfg
	if cfg.FT != FTNone && cfg.FT != FTWriteAheadLineage {
		return nil, fmt.Errorf("engine: process mode supports FTNone and FTWriteAheadLineage only")
	}
	if sink == nil {
		return nil, fmt.Errorf("engine: worker runner needs a result sink")
	}
	out, err := spec.Plan.OutputStage()
	if err != nil {
		return nil, err
	}
	// The head's NewRunner resolved every zero-valued knob before the spec
	// shipped; re-apply the floors defensively so a hand-built spec cannot
	// divide by zero here.
	if cfg.MaxTake <= 0 {
		cfg.MaxTake = 64
	}
	if cfg.MinTake <= 0 {
		cfg.MinTake = 1
	}
	if cfg.ThreadsPerWorker <= 0 {
		cfg.ThreadsPerWorker = 8
	}
	if cfg.CPUPerWorker <= 0 {
		cfg.CPUPerWorker = 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.CPUPerWorker
	}
	if cfg.PollInterval < minWorkerPollInterval {
		cfg.PollInterval = minWorkerPollInterval
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Millisecond
	}
	qmet := &metrics.Collector{}
	r := &Runner{
		cl:     cl,
		plan:   spec.Plan,
		cfg:    cfg,
		qid:    spec.QueryID,
		shared: sharedFor(cl),
		met:    cl.Metrics,
		qmet:   qmet,
		tee:    metrics.Tee(cl.Metrics, qmet),
		out:    out,
		// The spool only backs FTSpool/FTCheckpoint, which the gate above
		// excludes; a local store keeps the field non-nil.
		spool: storage.NewObjectStore(cl.Cost, cfg.SpoolProfile, cl.Metrics),
	}
	r.par = make([]int, len(spec.Plan.Stages))
	for i := range spec.Plan.Stages {
		r.par[i] = spec.Plan.Parallelism(i, len(cl.Workers))
	}
	r.spooled = make([]bool, len(spec.Plan.Stages))
	for i := range spec.Plan.Stages {
		for _, e := range spec.Plan.Consumers(i) {
			if e.Part.Kind != PartitionDirect {
				r.spooled[i] = true
			}
		}
	}
	r.collector = newCollector(out, r.par[out]) // inert; deliveries go to sink
	r.sink = sink
	r.buildKeys()
	r.place = make(map[lineage.ChannelID]int)
	r.failCh = make(chan error, 1)
	r.flushEvery = spec.FlushEvery
	r.shuffleCompress = spec.ShuffleCompress
	r.spillCompress = spec.SpillCompress
	if spec.Tracing {
		names := make([]string, len(spec.Plan.Stages))
		for i, st := range spec.Plan.Stages {
			names[i] = st.Name
		}
		r.rec = trace.New(len(cl.Workers), 0, names)
	}
	r.hTask = histPair{qmet.Hist(metrics.TaskLatencyNS), cl.Metrics.Hist(metrics.TaskLatencyNS)}
	r.hAdmit = histPair{qmet.Hist(metrics.AdmissionWaitNS), cl.Metrics.Hist(metrics.AdmissionWaitNS)}
	r.hFlush = histPair{qmet.Hist(metrics.FlushLatencyNS), cl.Metrics.Hist(metrics.FlushLatencyNS)}
	r.hStall = histPair{qmet.Hist(metrics.CursorStallNS), cl.Metrics.Hist(metrics.CursorStallNS)}
	return r, nil
}

// RunWorkerQuery executes one worker's share of a query inside a worker
// process: it spawns the task-manager threads for worker self on cl (whose
// GCS, flight transports and object store are the wire clients the caller
// assembled) and blocks until ctx is cancelled — the wire layer cancels it
// on the head's STOP_QUERY. It returns the worker's recorded trace spans
// (nil when the spec did not enable tracing) for ship-back to the head.
//
// Fatal task errors (bad plan, corrupt data) are forwarded through onFail
// while the loops keep running — the head's coordinator owns the query's
// fate, exactly as with the in-memory failCh. Transient errors (dead
// consumers, fenced commits) never reach onFail.
func RunWorkerQuery(ctx context.Context, cl *cluster.Cluster, spec *WorkerQuerySpec, self cluster.WorkerID, sink ResultSink, onFail func(error)) ([]trace.Span, error) {
	if int(self) < 0 || int(self) >= len(cl.Workers) {
		return nil, fmt.Errorf("engine: no worker %d in a %d-worker cluster", self, len(cl.Workers))
	}
	r, err := newWorkerRunner(cl, spec, sink)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Same ordering contract as execute(): the committer must outlive every
	// task-manager thread. This process's committer folds its channels'
	// commits into shared remote transactions — the group-commit batching
	// now also amortizes wire round trips.
	if r.flushEvery >= 0 {
		r.gc = r.shared.committer(r.cl.GCS)
	}
	failDone := make(chan struct{})
	go func() {
		defer close(failDone)
		for {
			select {
			case <-ctx.Done():
				return
			case err := <-r.failCh:
				if onFail != nil {
					onFail(err)
				}
			}
		}
	}()
	w := cl.Worker(self)
	t := newTaskManager(r, w)
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.ThreadsPerWorker; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.loop(ctx)
		}()
	}
	<-ctx.Done()
	wg.Wait()
	cancel()
	<-failDone
	if r.gc != nil {
		r.shared.committerDone()
		r.gc = nil
	}
	// Local teardown only: spill runs and backups of this query on THIS
	// worker's disk. GCS and mailbox cleanup is the head's job.
	if w.Alive() {
		w.Disk.DeletePrefix(spillQueryPrefix(r.qid))
		w.Disk.DeletePrefix(backupQueryPrefix(r.qid))
	}
	if r.rec != nil {
		return r.rec.Snapshot(), nil
	}
	return nil, nil
}

// The head-side counterparts the wire server needs to relay worker
// messages into a running query.

// DeliverResult feeds a worker-relayed output partition into this runner's
// head-node collector, with the collector's usual backpressure semantics.
func (r *Runner) DeliverResult(t lineage.TaskName, data []byte, epoch int) bool {
	return r.collector.deliver(t, data, epoch)
}

// DeliverSpooledResult feeds a worker-relayed spool manifest into this
// runner's head-node collector.
func (r *Runner) DeliverSpooledResult(t lineage.TaskName, worker int, size int64, epoch int) bool {
	return r.collector.deliverSpooled(t, worker, size, epoch)
}

// ReportWorkerFailure surfaces a worker process's fatal task error to the
// coordinator, failing the query like a local reportFailure would.
func (r *Runner) ReportWorkerFailure(err error) { r.reportFailure(err) }

// MergeWorkerSpans folds a worker process's shipped trace spans into the
// query's head-side recorder; no-op when tracing is off.
func (r *Runner) MergeWorkerSpans(spans []trace.Span) {
	if r.rec == nil {
		return
	}
	for _, s := range spans {
		r.rec.Record(s)
	}
}
