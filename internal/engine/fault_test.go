package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/expr"
	"quokka/internal/metrics"
	"quokka/internal/ops"
)

// killAfterTasks kills the given worker once the cluster has executed at
// least n tasks, from a background goroutine. It returns a done channel.
func killAfterTasks(cl *cluster.Cluster, victim int, n int64) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if cl.Metrics.Get(metrics.TasksExecuted) >= n {
				cl.Worker(cluster.WorkerID(victim)).Kill()
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	return done
}

func runWithFailure(t *testing.T, cl *cluster.Cluster, p *Plan, cfg Config, victim int, afterTasks int64) (*batch.Batch, *Report, error) {
	t.Helper()
	r, err := NewRunner(cl, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	killed := killAfterTasks(cl, victim, afterTasks)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, rep, runErr := r.Run(ctx)
	<-killed
	return out, rep, runErr
}

func TestRecoveryScanAggregate(t *testing.T) {
	const n = 2000
	cl := testCluster(t, 4, map[string][]*batch.Batch{"numbers": numbersTable(n, 24)})
	out, rep, err := runWithFailure(t, cl, scanFilterAggPlan(0), DefaultConfig(), 1, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want float64
	for i := 0; i < n; i++ {
		want += float64(2 * i)
	}
	checkSumCount(t, out, want, n)
	if rep.Recoveries == 0 {
		t.Error("expected at least one recovery")
	}
}

func TestRecoveryJoin(t *testing.T) {
	const nFact = 1000
	cl := testCluster(t, 4, joinTables(nFact))
	out, rep, err := runWithFailure(t, cl, joinPlan(), DefaultConfig(), 2, 6)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("result: %v", out)
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Col("c").Ints[i] != nFact/10 {
			t.Errorf("group %q count = %d, want %d",
				out.Col("name").Strings[i], out.Col("c").Ints[i], nFact/10)
		}
	}
	if rep.Recoveries == 0 {
		t.Error("expected a recovery")
	}
}

// The core correctness property of write-ahead lineage: the query result
// with a failure equals the result without one (channels that did not fail
// are never rewound, and replays regenerate identical partitions).
func TestFailureResultEqualsFailureFreeResult(t *testing.T) {
	tables := joinTables(800)
	clean := testCluster(t, 4, tables)
	wantOut, _ := runPlan(t, clean, joinPlan(), DefaultConfig())

	faulty := testCluster(t, 4, tables)
	gotOut, _, err := runWithFailure(t, faulty, joinPlan(), DefaultConfig(), 1, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantEnc := batch.Encode(wantOut)
	gotEnc := batch.Encode(gotOut)
	if string(wantEnc) != string(gotEnc) {
		t.Fatalf("results differ:\nwant %v\ngot  %v", wantOut, gotOut)
	}
}

func TestRecoverySparkMode(t *testing.T) {
	cl := testCluster(t, 4, joinTables(600))
	out, rep, err := runWithFailure(t, cl, joinPlan(), SparkConfig(), 3, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("result: %v", out)
	}
	if rep.Recoveries == 0 {
		t.Error("expected a recovery")
	}
}

func TestRecoverySpoolMode(t *testing.T) {
	cl := testCluster(t, 4, joinTables(600))
	cfg := TrinoConfig()
	out, rep, err := runWithFailure(t, cl, joinPlan(), cfg, 1, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("result: %v", out)
	}
	if rep.Metrics[metrics.SpoolWriteBytes] == 0 {
		t.Error("spool mode should write spool bytes")
	}
	if rep.Recoveries == 0 {
		t.Error("expected a recovery")
	}
}

func TestRecoveryCheckpointMode(t *testing.T) {
	cl := testCluster(t, 4, joinTables(800))
	cfg := DefaultConfig()
	cfg.FT = FTCheckpoint
	cfg.CheckpointEveryTasks = 2
	out, rep, err := runWithFailure(t, cl, joinPlan(), cfg, 2, 8)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("result: %v", out)
	}
	var total int64
	for i := 0; i < out.NumRows(); i++ {
		total += out.Col("c").Ints[i]
	}
	if total != 800 {
		t.Errorf("total = %d, want 800", total)
	}
	if rep.Metrics[metrics.CheckpointBytes] == 0 {
		t.Error("checkpoint mode should persist state bytes")
	}
}

func TestNoFaultToleranceFailsQuery(t *testing.T) {
	cl := testCluster(t, 4, map[string][]*batch.Batch{"numbers": numbersTable(2000, 24)})
	cfg := DefaultConfig()
	cfg.FT = FTNone
	_, _, err := runWithFailure(t, cl, scanFilterAggPlan(0), cfg, 1, 5)
	if !errors.Is(err, ErrQueryFailed) {
		t.Fatalf("err = %v, want ErrQueryFailed", err)
	}
}

func TestNestedFailures(t *testing.T) {
	const nFact = 1500
	cl := testCluster(t, 5, joinTables(nFact))
	r, err := NewRunner(cl, joinPlan(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k1 := killAfterTasks(cl, 1, 4)
	k2 := killAfterTasks(cl, 3, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, rep, runErr := r.Run(ctx)
	<-k1
	<-k2
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("result: %v", out)
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Col("c").Ints[i] != nFact/10 {
			t.Errorf("group %q count = %d", out.Col("name").Strings[i], out.Col("c").Ints[i])
		}
	}
	// Both kills may land within one heartbeat tick, in which case a
	// single reconciliation pass handles them together — also correct.
	if rep.Recoveries < 1 {
		t.Errorf("recoveries = %d, want >= 1", rep.Recoveries)
	}
}

func TestAllWorkersDead(t *testing.T) {
	cl := testCluster(t, 2, map[string][]*batch.Batch{"numbers": numbersTable(4000, 40)})
	r, err := NewRunner(cl, scanFilterAggPlan(0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for cl.Metrics.Get(metrics.TasksExecuted) < 3 {
			time.Sleep(100 * time.Microsecond)
		}
		cl.Worker(0).Kill()
		cl.Worker(1).Kill()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, runErr := r.Run(ctx)
	if !errors.Is(runErr, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", runErr)
	}
}

// scanMapAggPlan inserts a narrow map stage between scan and aggregate, so
// spool-mode recovery must cascade through a non-spooled stage.
func scanMapAggPlan() *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read", Reader: &ReaderSpec{Table: "numbers"}},
		&Stage{ID: 1, Name: "map",
			Op:     ops.NewFilterProjectSpec(nil, ops.NE("v", expr.C("v"))),
			Inputs: []StageInput{{Stage: 0, Part: Direct()}}},
		&Stage{ID: 2, Name: "agg", Parallelism: 1,
			Op:     ops.NewHashAggSpec(nil, ops.Sum("s", expr.C("v")), ops.CountStar("c")),
			Inputs: []StageInput{{Stage: 1, Part: Single()}}},
	)
}

func TestRecoverySpoolModeWithNarrowStage(t *testing.T) {
	const n = 2500
	cl := testCluster(t, 4, map[string][]*batch.Batch{"numbers": numbersTable(n, 30)})
	cfg := DefaultConfig()
	cfg.FT = FTSpool
	out, rep, err := runWithFailure(t, cl, scanMapAggPlan(), cfg, 2, 6)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want float64
	for i := 0; i < n; i++ {
		want += float64(2 * i)
	}
	checkSumCount(t, out, want, n)
	if rep.Recoveries == 0 {
		t.Error("expected a recovery")
	}
}

// TestFailureRecoveryWithParallelOperators kills a worker mid-probe while
// stateful operators run partition-parallel: the replayed channels must
// rebuild identical per-partition state (partition assignment is a pure
// function of key hash), so the result equals the failure-free result
// byte for byte.
func TestFailureRecoveryWithParallelOperators(t *testing.T) {
	tables := joinTables(800)
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	cfg.CPUPerWorker = 4

	clean := testCluster(t, 4, tables)
	wantOut, _ := runPlan(t, clean, joinPlan(), cfg)

	faulty := testCluster(t, 4, tables)
	// The dim build side commits within the first few tasks; by task 8 the
	// join channels are probing fact batches, so the kill lands mid-probe.
	gotOut, rep, err := runWithFailure(t, faulty, joinPlan(), cfg, 1, 8)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Recoveries == 0 {
		t.Error("expected at least one recovery")
	}
	if rep.Metrics[metrics.PartitionTasks] == 0 {
		t.Error("no partition tasks dispatched under Parallelism=4")
	}
	if string(batch.Encode(gotOut)) != string(batch.Encode(wantOut)) {
		t.Fatalf("results differ:\nwant %v\ngot  %v", wantOut, gotOut)
	}
}
