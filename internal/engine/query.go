package engine

import (
	"context"
	"sync"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/trace"
)

// DefaultCursorBufferBytes bounds the head-node buffer of committed-but-
// unread output partitions while a Cursor is attached. Beyond it,
// deliveries are refused and the producing tasks stay pending — the
// engine's task-retry machinery then acts as end-to-end backpressure.
const DefaultCursorBufferBytes = 4 << 20

// Query is a handle on one in-flight (or finished) query execution. It is
// returned immediately by Runner.Start — possibly before the query is even
// admitted — and exposes streaming consumption (Cursor), cancellation,
// completion waiting and the final report.
type Query struct {
	r      *Runner
	cancel context.CancelFunc
	done   chan struct{}

	curOnce sync.Once
	cur     *Cursor

	mu     sync.Mutex
	err    error
	report *Report
}

// Start begins executing the query and returns its handle without
// blocking. The query first passes the cluster's admission controller
// (FIFO, bounded concurrency); cancellation — via ctx or Query.Cancel —
// works in every phase, including while still queued.
func (r *Runner) Start(ctx context.Context) *Query {
	ctx, cancel := context.WithCancel(ctx)
	q := &Query{r: r, cancel: cancel, done: make(chan struct{})}
	go q.run(ctx)
	return q
}

// run drives the query to a terminal state on its own goroutine.
func (q *Query) run(ctx context.Context) {
	started := time.Now()
	err := q.r.execute(ctx)
	rep := &Report{
		QueryID:       q.r.qid,
		Duration:      time.Since(started),
		Recoveries:    q.r.recovered,
		TasksExecuted: q.r.qmet.Get(metrics.TasksExecuted),
		TasksReplayed: q.r.qmet.Get(metrics.TasksReplayed),
		Metrics:       q.r.qmet.Snapshot(),
		Histograms:    q.r.qmet.Histograms(),
		Stages:        q.r.stageStats(),
	}
	// The network split is accounted at the cluster's mailboxes and
	// sockets, which per-query collectors cannot see: modelled shuffle
	// payload bytes vs real wire bytes (process mode). Surface both as
	// cluster-cumulative values so a Report shows what a query's transport
	// actually moved — 0 vs non-0 wire bytes is the in-memory/process
	// mode tell.
	for _, name := range []string{metrics.NetBytesModelled, metrics.NetBytesWire} {
		if v := q.r.met.Get(name); v != 0 {
			rep.Metrics[name] = v
		}
	}
	q.mu.Lock()
	q.err = err
	q.report = rep
	q.mu.Unlock()
	// Wake any cursor blocked on the stream; nil err = clean end of stream.
	q.r.collector.terminate(err)
	q.cancel() // release the ctx; no-op if already cancelled
	close(q.done)
}

// QueryID returns the query's cluster-unique id.
func (q *Query) QueryID() string { return q.r.qid }

// Done returns a channel closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// Cancel stops the query. Task managers stop, mailbox slots drain, spill
// namespaces sweep, and the query's GCS namespace is deleted — without
// disturbing concurrent queries. Idempotent; safe while still queued.
func (q *Query) Cancel() { q.cancel() }

// Wait blocks until the query finishes and returns its terminal error
// (nil on success, context.Canceled after Cancel). Sugar for
// WaitContext(context.Background()).
func (q *Query) Wait() error {
	return q.WaitContext(context.Background())
}

// WaitContext blocks until the query finishes or ctx is done. A ctx
// expiry returns ctx.Err() WITHOUT cancelling the query — the query keeps
// running and can be waited on again (use Cancel to stop it).
func (q *Query) WaitContext(ctx context.Context) error {
	select {
	case <-q.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Report returns the execution report, or nil while the query is still
// running.
func (q *Query) Report() *Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.report
}

// Trace returns the query's flight recorder, or nil when the cluster was
// not configured with WithTracing at submit time. It may be read while the
// query runs (spans appear as work commits) or after completion; use
// Recorder.WriteJSON for the Chrome trace-event export.
func (q *Query) Trace() *trace.Recorder { return q.r.rec }

// Stats returns per-stage actuals aggregated from the flight recorder:
// task counts, rows/bytes in and out, summed task wall-clock, spill
// volume. Nil when tracing is off; live (a partial aggregate) while the
// query still runs.
func (q *Query) Stats() []StageStats { return q.r.stageStats() }

// Metric reads one of THIS query's counters live, while the query runs —
// concurrent queries on one cluster each report their own tasks, spill
// bytes, shuffle traffic and recoveries (this is how overlapping execution
// is observable). See package metrics for the counter names.
func (q *Query) Metric(name string) int64 { return q.r.qmet.Get(name) }

// Result waits for completion and returns the concatenated output exactly
// as the one-shot Runner.Run always has. If a Cursor consumed part of the
// stream, Result returns only the remainder — use one or the other.
func (q *Query) Result() (*batch.Batch, *Report, error) {
	if err := q.Wait(); err != nil {
		return nil, nil, err
	}
	out, err := q.r.assembleResult()
	if err != nil {
		return nil, nil, err
	}
	return out, q.Report(), nil
}

// Cursor returns the query's streaming result cursor: a pull-based
// iterator over final-stage output batches in deterministic (channel,
// sequence) order — the same rows in the same order Result would return on
// a deterministic plan, but delivered incrementally as the last stage
// commits them instead of as one giant head-node batch. Attaching the
// cursor bounds the head-node buffer (Config.CursorBufferBytes), turning
// slow consumption into backpressure on the output stage. Subsequent calls
// return the same cursor.
func (q *Query) Cursor() *Cursor {
	q.curOnce.Do(func() {
		q.r.collector.stream(q.r.cursorLimit)
		q.cur = &Cursor{q: q}
	})
	return q.cur
}

// Cursor iterates a query's output batches as they are committed by the
// final stage. Not safe for concurrent use by multiple goroutines.
type Cursor struct {
	q   *Query
	err error
	eos bool
}

// Next returns the next non-empty output batch, blocking until one is
// committed. It returns (nil, nil) at end of stream and the query's
// terminal error if execution fails or is cancelled. Sugar for
// NextContext(context.Background()).
func (c *Cursor) Next() (*batch.Batch, error) {
	return c.NextContext(context.Background())
}

// NextContext is Next honouring ctx: a ctx expiry unblocks the wait and
// returns ctx.Err() without latching it — the cursor stays usable and the
// query keeps running. Spooled result partitions are fetched directly from
// the worker holding them; the head only ever saw their manifests.
func (c *Cursor) NextContext(ctx context.Context) (*batch.Batch, error) {
	if c.err != nil || c.eos {
		return nil, c.err
	}
	r := c.q.r
	fetch := func(t lineage.TaskName, worker int) ([]byte, error) {
		return r.cl.Worker(cluster.WorkerID(worker)).Flight.FetchResult(r.qid, t)
	}
	drop := func(t lineage.TaskName, worker int) {
		r.cl.Worker(cluster.WorkerID(worker)).Flight.DropResult(r.qid, t)
	}
	// The collector blocks on a cond var; wake it when ctx fires so the
	// cancellation is observed promptly.
	stop := context.AfterFunc(ctx, r.collector.wake)
	defer stop()
	for {
		stallStart := time.Now()
		data, ok, err := r.collector.next(ctx, fetch, drop)
		r.hStall.observe(int64(time.Since(stallStart)))
		if err != nil {
			if ctx.Err() == nil {
				c.err = err // terminal query error: latch it
			}
			return nil, err
		}
		if !ok {
			c.eos = true
			return nil, nil
		}
		if len(data) == 0 {
			continue // empty partition: watermark filler, no rows
		}
		b, err := batch.Decode(data)
		if err != nil {
			c.err = err
			return nil, err
		}
		if b.NumRows() == 0 {
			continue
		}
		return b, nil
	}
}

// Err returns the error that terminated iteration, if any.
func (c *Cursor) Err() error { return c.err }
