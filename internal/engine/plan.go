// Package engine implements the paper's contribution: a distributed
// pipelined push-based query engine with dynamic task dependencies, made
// fault tolerant by write-ahead lineage (Algorithm 1) with pipeline-
// parallel recovery (Algorithm 2). It also implements every baseline the
// paper evaluates against: stagewise (Spark-like) execution with data-
// parallel recovery, static task dependencies (Trino-like), durable
// spooling, and state checkpointing.
package engine

import (
	"fmt"

	"quokka/internal/ops"
)

// PartitionKind selects how a producer's output is routed to the channels
// of a consumer stage.
type PartitionKind uint8

// Partitioning kinds.
const (
	// PartitionHash routes rows by hashing key columns; equal keys land on
	// the same consumer channel.
	PartitionHash PartitionKind = iota
	// PartitionBroadcast copies the whole output to every consumer channel
	// (small build sides).
	PartitionBroadcast
	// PartitionSingle sends everything to channel 0 (final sorts, global
	// aggregates).
	PartitionSingle
	// PartitionDirect keeps data on the producer's channel index (modulo
	// the consumer's parallelism): the zero-shuffle narrow dependency of
	// scan->filter edges.
	PartitionDirect
)

// Partitioning describes one edge's routing.
type Partitioning struct {
	Kind PartitionKind
	Keys []string
}

// Hash returns hash partitioning on the given keys.
func Hash(keys ...string) Partitioning { return Partitioning{Kind: PartitionHash, Keys: keys} }

// Broadcast returns broadcast partitioning.
func Broadcast() Partitioning { return Partitioning{Kind: PartitionBroadcast} }

// Single returns all-to-channel-0 partitioning.
func Single() Partitioning { return Partitioning{Kind: PartitionSingle} }

// Direct returns producer-channel-aligned partitioning (narrow edge).
func Direct() Partitioning { return Partitioning{Kind: PartitionDirect} }

// StageInput is one input edge of a stage: which upstream stage feeds it,
// how its output is partitioned across this stage's channels, and the
// consumption phase. A stage's tasks must exhaust all phase-p edges before
// consuming any phase-(p+1) edge — the hash-join pipeline breaker (build
// before probe).
type StageInput struct {
	Stage int
	Part  Partitioning
	Phase int
}

// ReaderSpec marks a stage as an input reader over an object-store table.
// Channel c of a reader stage with parallelism P reads splits c, c+P,
// c+2P, ... — one split per task, so readers pipeline with downstream
// stages. When the planner pruned splits, the cursor walk indexes the
// Splits survivor list instead; lineage still records the physical split
// number it resolves to, so replay is identical with or without pruning.
type ReaderSpec struct {
	Table string
	// Splits is the zone-map pruning survivor list: the physical split
	// indexes to read, ascending. nil means all splits (no pruning ran); a
	// non-nil empty list means every split was pruned.
	Splits []int
	// TotalSplits is the table's physical split count when pruning ran
	// (0 when Splits is nil), recorded for metrics and EXPLAIN.
	TotalSplits int
	// Cols, when non-nil, names the only columns the plan consumes from
	// this table (output columns plus predicate inputs); the reader skips
	// decoding the rest.
	Cols []string
}

// Stage is one pipeline stage. Exactly one of Reader and Op is set.
type Stage struct {
	ID          int
	Name        string
	Reader      *ReaderSpec
	Op          ops.Spec
	Parallelism int // 0 means the cluster default (one channel per worker)
	Inputs      []StageInput
	// Detail is a human-readable description of the logical node this stage
	// implements (the lowerer fills it from the optimizer's node rendering).
	// Purely informational — EXPLAIN ANALYZE prints it next to the actuals.
	Detail string
}

// Plan is a DAG of stages. Stage IDs must equal their index. Exactly one
// stage (the output stage) must have no consumers.
type Plan struct {
	Stages []*Stage
}

// NewPlan validates and returns a plan over the given stages.
func NewPlan(stages ...*Stage) (*Plan, error) {
	p := &Plan{Stages: stages}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustPlan is NewPlan panicking on error; for static plan builders.
func MustPlan(stages ...*Stage) *Plan {
	p, err := NewPlan(stages...)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks structural invariants: contiguous IDs, reader XOR
// operator, edges referencing earlier stages only (the DAG is given in
// topological order), and a unique output stage.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("engine: empty plan")
	}
	for i, s := range p.Stages {
		if s.ID != i {
			return fmt.Errorf("engine: stage at index %d has ID %d", i, s.ID)
		}
		if (s.Reader == nil) == (s.Op == nil) {
			return fmt.Errorf("engine: stage %d must have exactly one of Reader or Op", i)
		}
		if s.Reader != nil && len(s.Inputs) != 0 {
			return fmt.Errorf("engine: reader stage %d cannot have inputs", i)
		}
		if s.Reader == nil && len(s.Inputs) == 0 {
			return fmt.Errorf("engine: compute stage %d has no inputs", i)
		}
		for e, in := range s.Inputs {
			if in.Stage < 0 || in.Stage >= i {
				return fmt.Errorf("engine: stage %d input %d references stage %d (must be an earlier stage)", i, e, in.Stage)
			}
		}
	}
	if _, err := p.OutputStage(); err != nil {
		return err
	}
	return nil
}

// OutputStage returns the unique stage no other stage consumes.
func (p *Plan) OutputStage() (int, error) {
	consumed := make([]bool, len(p.Stages))
	for _, s := range p.Stages {
		for _, in := range s.Inputs {
			consumed[in.Stage] = true
		}
	}
	out := -1
	for i, c := range consumed {
		if c {
			continue
		}
		if out != -1 {
			return -1, fmt.Errorf("engine: stages %d and %d are both unconsumed; plans need a single output stage", out, i)
		}
		out = i
	}
	if out == -1 {
		return -1, fmt.Errorf("engine: no output stage")
	}
	return out, nil
}

// Edge is a derived consumer edge of a stage: consumer stage To reads this
// stage's output on input index Input with the given partitioning.
type Edge struct {
	To    int
	Input int
	Part  Partitioning
}

// Consumers returns the consumer edges of the given stage, in (To, Input)
// order.
func (p *Plan) Consumers(stage int) []Edge {
	var out []Edge
	for _, s := range p.Stages {
		for e, in := range s.Inputs {
			if in.Stage == stage {
				out = append(out, Edge{To: s.ID, Input: e, Part: in.Part})
			}
		}
	}
	return out
}

// Parallelism resolves a stage's channel count against the cluster default.
func (p *Plan) Parallelism(stage, def int) int {
	if n := p.Stages[stage].Parallelism; n > 0 {
		return n
	}
	return def
}

// MaxPhase returns the largest input phase of the stage.
func (s *Stage) MaxPhase() int {
	m := 0
	for _, in := range s.Inputs {
		if in.Phase > m {
			m = in.Phase
		}
	}
	return m
}

// PipelineDepth counts the stages on the longest root-to-output path; the
// paper's recovery parallelism is proportional to it (§III-B).
func (p *Plan) PipelineDepth() int {
	depth := make([]int, len(p.Stages))
	max := 0
	for i, s := range p.Stages {
		d := 1
		for _, in := range s.Inputs {
			if depth[in.Stage]+1 > d {
				d = depth[in.Stage] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}
