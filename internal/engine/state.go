package engine

import (
	"fmt"
	"strconv"
	"strings"

	"quokka/internal/gcs"
	"quokka/internal/lineage"
)

// GCS key schema. Everything the engine coordinates through lives in the
// GCS under these prefixes (§IV-B: "the single source of truth for the
// execution state of the entire system"). Every key is namespaced under
// the owning query's id — q/<qid>/... — so any number of in-flight queries
// coexist in one GCS without clobbering each other's lineage, cursors,
// barriers or recovery queues. A query's whole namespace is deleted when
// it finishes (success, failure or cancellation):
//
//	q/<qid>/pl/<s>.<c>      channel placement: worker id
//	q/<qid>/cep/<s>.<c>     channel epoch; bumped on rewind so TaskManagers
//	                drop cached operator state
//	q/<qid>/cur/<s>.<c>     task cursor: next sequence number == number of
//	                committed tasks. Consumers use it as the "lineage is
//	                committed" check of Algorithm 1.
//	q/<qid>/lin/<s>.<c>.<q> committed lineage record of task (s,c,q)
//	q/<qid>/wm/<s>.<c>      consumption watermark vector of channel (s,c)
//	q/<qid>/done/<s>.<c>    set when the channel finished; value = task count
//	q/<qid>/pd/<s>.<c>.<q>  partition directory: worker holding the task's
//	                backup
//	q/<qid>/bar             recovery barrier flag (value = barrier generation)
//	q/<qid>/ack/<w>         TaskManager w's acknowledgment of the barrier
//	q/<qid>/gep             global placement epoch; bumped when recovery ends
//	q/<qid>/rp/<w>/<s>.<c>.<q>   replay task: worker w re-reads its backed-up
//	                partition (s,c,q) once and re-pushes a piece to each
//	                consumer channel in the entry's value ("ds.dc;...")
//	q/<qid>/rpi/<w>/<s>.<c>.<q>  input replay: re-read the split of reader
//	                task (s,c,q) from the object store; same value format
//	q/<qid>/recn            recovery generation; replay queues are only
//	                scanned after it becomes non-zero
//	q/<qid>/ck/<s>.<c>      checkpoint marker: "<seq> <objkey> <wm>"
//	q/<qid>/opp             operator partition count for this query; recorded
//	                at seed time so TaskManagers (including replacements that
//	                replay lineage after a failure) all split stateful
//	                operator state into the same hash partitions. Recovery
//	                depends on the per-query opp record: partition routing is
//	                fnv-1a(key) mod P with P read from here, never from the
//	                local config.
//
// The key helpers are Runner methods because the Runner owns the query id;
// barriers, acks, epochs and recovery generations are per query, which is
// what lets one query recover from a worker failure without quiescing the
// others.

// keyNS returns the runner's whole GCS namespace prefix ("q/<qid>/").
func (r *Runner) keyNS() string { return "q/" + r.qid + "/" }

// Disk key schema. Worker-local disk state is namespaced per query just
// like the GCS: spill run files under spill/<qid>/, upstream partition
// backups under bk/<qid>/. Each prefix has exactly ONE construction site
// below — the nskey invariant analyzer (internal/lint) fails the build if
// a raw prefix literal appears anywhere else, so a sweep can never hit a
// bare prefix and take another query's state with it.

// spillQueryPrefix is the blessed construction site of the "spill/"
// namespace: every spill run file of one query lives under it, and the
// per-query teardown sweep deletes exactly this prefix.
func spillQueryPrefix(qid string) string { return "spill/" + qid + "/" }

// spillChanPrefix covers every incarnation (all epochs) of one channel's
// spill runs; resetChannel sweeps it so a rewound channel's replacement
// operator never reads pre-failure run files.
func spillChanPrefix(qid string, id lineage.ChannelID) string {
	return spillQueryPrefix(qid) + id.String() + "."
}

// spillNS is the disk-key namespace for one channel incarnation's spill
// run files ("spill/<qid>/<id>.e<cep>"): keyed by query, channel AND
// channel epoch, so concurrent queries' and successive incarnations'
// files never collide.
func spillNS(qid string, id lineage.ChannelID, cep int) string {
	return fmt.Sprintf("%se%d", spillChanPrefix(qid, id), cep)
}

// backupQueryPrefix is the blessed construction site of the "bk/"
// namespace: upstream partition backups, swept per query at teardown.
func backupQueryPrefix(qid string) string { return "bk/" + qid + "/" }

// backupKey locates one task's partition backup on its worker's disk.
func backupKey(qid string, t lineage.TaskName) string {
	return backupQueryPrefix(qid) + t.String()
}

// chanKeys holds one channel's prebuilt GCS key strings. Poll rounds
// build keys for every channel of the plan on every snapshot refetch, so
// the per-channel keys are formatted once at runner setup and the table
// is read-only (hence lock-free) afterwards.
type chanKeys struct {
	place, cep, cursor, wm, done, ck string
}

// buildKeys precomputes the per-channel key table. Called once from
// NewRunner, after stage parallelism is resolved.
func (r *Runner) buildKeys() {
	ns := r.keyNS()
	r.keys = make(map[lineage.ChannelID]*chanKeys)
	for s := range r.plan.Stages {
		for c := 0; c < r.par[s]; c++ {
			id := lineage.ChannelID{Stage: s, Channel: c}
			cs := id.String()
			r.keys[id] = &chanKeys{
				place:  ns + "pl/" + cs,
				cep:    ns + "cep/" + cs,
				cursor: ns + "cur/" + cs,
				wm:     ns + "wm/" + cs,
				done:   ns + "done/" + cs,
				ck:     ns + "ck/" + cs,
			}
		}
	}
}

func (r *Runner) keyPlacement(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.place
	}
	return r.keyNS() + "pl/" + c.String()
}

func (r *Runner) keyChanEpoch(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.cep
	}
	return r.keyNS() + "cep/" + c.String()
}

func (r *Runner) keyCursor(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.cursor
	}
	return r.keyNS() + "cur/" + c.String()
}

func (r *Runner) keyWatermark(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.wm
	}
	return r.keyNS() + "wm/" + c.String()
}

func (r *Runner) keyDone(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.done
	}
	return r.keyNS() + "done/" + c.String()
}

func (r *Runner) keyCheckpoint(c lineage.ChannelID) string {
	if k, ok := r.keys[c]; ok {
		return k.ck
	}
	return r.keyNS() + "ck/" + c.String()
}

func (r *Runner) keyLineage(t lineage.TaskName) string { return r.keyNS() + "lin/" + t.String() }
func (r *Runner) keyPartDir(t lineage.TaskName) string { return r.keyNS() + "pd/" + t.String() }
func (r *Runner) keyBarrier() string                   { return r.keyNS() + "bar" }
func (r *Runner) keyAck(w int) string                  { return fmt.Sprintf("%sack/%d", r.keyNS(), w) }
func (r *Runner) keyGlobalEpoch() string               { return r.keyNS() + "gep" }
func (r *Runner) keyRecoveries() string                { return r.keyNS() + "recn" }
func (r *Runner) keyOpParallelism() string             { return r.keyNS() + "opp" }

func (r *Runner) keyReplay(w int, t lineage.TaskName) string {
	return fmt.Sprintf("%srp/%d/%s", r.keyNS(), w, t)
}

func (r *Runner) keyInputReplay(w int, t lineage.TaskName) string {
	return fmt.Sprintf("%srpi/%d/%s", r.keyNS(), w, t)
}

// addReplayDest appends a consumer channel to a replay entry's destination
// list, deduplicating. One replay entry per (worker, task) re-reads the
// backup once and re-pushes a piece to every rewound consumer.
func addReplayDest(tx *gcs.Txn, key string, dest lineage.ChannelID) {
	v, _ := tx.Get(key)
	ds := string(v)
	for _, d := range strings.Split(ds, ";") {
		if d == dest.String() {
			return
		}
	}
	if ds != "" {
		ds += ";"
	}
	tx.Put(key, []byte(ds+dest.String()))
}

// parseReplayDests decodes a replay entry's destination list.
func parseReplayDests(v []byte) ([]lineage.ChannelID, error) {
	var out []lineage.ChannelID
	for _, part := range strings.Split(string(v), ";") {
		if part == "" {
			continue
		}
		d, err := lineage.ParseChannelID(part)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Typed accessors over a gcs.Txn.

func txGetInt(tx *gcs.Txn, key string, def int) int {
	v, ok := tx.Get(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return def
	}
	return n
}

func txPutInt(tx *gcs.Txn, key string, v int) {
	tx.Put(key, []byte(strconv.Itoa(v)))
}

func txHas(tx *gcs.Txn, key string) bool {
	_, ok := tx.Get(key)
	return ok
}

func txGetWatermark(tx *gcs.Txn, key string) (lineage.Watermark, error) {
	v, _ := tx.Get(key)
	return lineage.DecodeWatermark(v)
}

func txPutWatermark(tx *gcs.Txn, key string, w lineage.Watermark) {
	tx.Put(key, w.Encode())
}

// checkpointMark is the decoded ck/ value.
type checkpointMark struct {
	Seq    int
	ObjKey string
	WM     lineage.Watermark
}

func encodeCheckpoint(m checkpointMark) []byte {
	return []byte(fmt.Sprintf("%d %s %s", m.Seq, m.ObjKey, m.WM.Encode()))
}

func decodeCheckpoint(data []byte) (checkpointMark, error) {
	var m checkpointMark
	parts := strings.SplitN(string(data), " ", 3)
	if len(parts) < 2 {
		return m, fmt.Errorf("engine: bad checkpoint marker %q", data)
	}
	seq, err := strconv.Atoi(parts[0])
	if err != nil {
		return m, fmt.Errorf("engine: bad checkpoint seq %q", data)
	}
	m.Seq = seq
	m.ObjKey = parts[1]
	if len(parts) == 3 && parts[2] != "" {
		wm, err := lineage.DecodeWatermark([]byte(parts[2]))
		if err != nil {
			return m, err
		}
		m.WM = wm
	} else {
		m.WM = lineage.Watermark{}
	}
	return m, nil
}
