package engine

import (
	"fmt"
	"strconv"
	"strings"

	"quokka/internal/gcs"
	"quokka/internal/lineage"
)

// GCS key schema. Everything the engine coordinates through lives in the
// GCS under these prefixes (§IV-B: "the single source of truth for the
// execution state of the entire system"):
//
//	pl/<s>.<c>      channel placement: worker id
//	cep/<s>.<c>     channel epoch; bumped on rewind so TaskManagers drop
//	                cached operator state
//	cur/<s>.<c>     task cursor: next sequence number == number of
//	                committed tasks. Consumers use it as the "lineage is
//	                committed" check of Algorithm 1.
//	lin/<s>.<c>.<q> committed lineage record of task (s,c,q)
//	wm/<s>.<c>      consumption watermark vector of channel (s,c)
//	done/<s>.<c>    set when the channel finished; value = task count
//	pd/<s>.<c>.<q>  partition directory: worker holding the task's backup
//	bar             recovery barrier flag (value = barrier generation)
//	ack/<w>         TaskManager w's acknowledgment of the barrier
//	gep             global placement epoch; bumped when recovery ends
//	rp/<w>/<s>.<c>.<q>   replay task: worker w re-reads its backed-up
//	                partition (s,c,q) once and re-pushes a piece to each
//	                consumer channel in the entry's value ("ds.dc;...")
//	rpi/<w>/<s>.<c>.<q>  input replay: re-read the split of reader task
//	                (s,c,q) from the object store; same value format
//	recn            recovery generation; replay queues are only scanned
//	                after it becomes non-zero
//	ck/<s>.<c>      checkpoint marker: "<seq> <objkey> <wm>"
//	opp             operator partition count for this query; recorded at
//	                seed time so TaskManagers (including replacements that
//	                replay lineage after a failure) all split stateful
//	                operator state into the same hash partitions
type keys struct{}

func keyPlacement(c lineage.ChannelID) string { return "pl/" + c.String() }
func keyChanEpoch(c lineage.ChannelID) string { return "cep/" + c.String() }
func keyCursor(c lineage.ChannelID) string    { return "cur/" + c.String() }
func keyLineage(t lineage.TaskName) string    { return "lin/" + t.String() }
func keyWatermark(c lineage.ChannelID) string { return "wm/" + c.String() }
func keyDone(c lineage.ChannelID) string      { return "done/" + c.String() }
func keyPartDir(t lineage.TaskName) string    { return "pd/" + t.String() }
func keyBarrier() string                      { return "bar" }
func keyAck(w int) string                     { return fmt.Sprintf("ack/%d", w) }
func keyGlobalEpoch() string                  { return "gep" }
func keyRecoveries() string                   { return "recn" }
func keyOpParallelism() string                { return "opp" }
func keyCheckpoint(c lineage.ChannelID) string {
	return "ck/" + c.String()
}

func keyReplay(w int, t lineage.TaskName) string {
	return fmt.Sprintf("rp/%d/%s", w, t)
}

func keyInputReplay(w int, t lineage.TaskName) string {
	return fmt.Sprintf("rpi/%d/%s", w, t)
}

// addReplayDest appends a consumer channel to a replay entry's destination
// list, deduplicating. One replay entry per (worker, task) re-reads the
// backup once and re-pushes a piece to every rewound consumer.
func addReplayDest(tx *gcs.Txn, key string, dest lineage.ChannelID) {
	v, _ := tx.Get(key)
	ds := string(v)
	for _, d := range strings.Split(ds, ";") {
		if d == dest.String() {
			return
		}
	}
	if ds != "" {
		ds += ";"
	}
	tx.Put(key, []byte(ds+dest.String()))
}

// parseReplayDests decodes a replay entry's destination list.
func parseReplayDests(v []byte) ([]lineage.ChannelID, error) {
	var out []lineage.ChannelID
	for _, part := range strings.Split(string(v), ";") {
		if part == "" {
			continue
		}
		d, err := lineage.ParseChannelID(part)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Typed accessors over a gcs.Txn.

func txGetInt(tx *gcs.Txn, key string, def int) int {
	v, ok := tx.Get(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		return def
	}
	return n
}

func txPutInt(tx *gcs.Txn, key string, v int) {
	tx.Put(key, []byte(strconv.Itoa(v)))
}

func txHas(tx *gcs.Txn, key string) bool {
	_, ok := tx.Get(key)
	return ok
}

func txGetWatermark(tx *gcs.Txn, c lineage.ChannelID) (lineage.Watermark, error) {
	v, _ := tx.Get(keyWatermark(c))
	return lineage.DecodeWatermark(v)
}

func txPutWatermark(tx *gcs.Txn, c lineage.ChannelID, w lineage.Watermark) {
	tx.Put(keyWatermark(c), w.Encode())
}

// checkpointMark is the decoded ck/ value.
type checkpointMark struct {
	Seq    int
	ObjKey string
	WM     lineage.Watermark
}

func encodeCheckpoint(m checkpointMark) []byte {
	return []byte(fmt.Sprintf("%d %s %s", m.Seq, m.ObjKey, m.WM.Encode()))
}

func decodeCheckpoint(data []byte) (checkpointMark, error) {
	var m checkpointMark
	parts := strings.SplitN(string(data), " ", 3)
	if len(parts) < 2 {
		return m, fmt.Errorf("engine: bad checkpoint marker %q", data)
	}
	seq, err := strconv.Atoi(parts[0])
	if err != nil {
		return m, fmt.Errorf("engine: bad checkpoint seq %q", data)
	}
	m.Seq = seq
	m.ObjKey = parts[1]
	if len(parts) == 3 && parts[2] != "" {
		wm, err := lineage.DecodeWatermark([]byte(parts[2]))
		if err != nil {
			return m, err
		}
		m.WM = wm
	} else {
		m.WM = lineage.Watermark{}
	}
	return m, nil
}
