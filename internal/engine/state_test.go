package engine

import (
	"reflect"
	"testing"

	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
)

func TestKeySchema(t *testing.T) {
	// Every key lives under the owning query's namespace: that prefix is
	// what lets concurrent queries share one GCS without collisions.
	r := &Runner{qid: "q7"}
	c := lineage.ChannelID{Stage: 2, Channel: 5}
	n := lineage.TaskName{Stage: 2, Channel: 5, Seq: 9}
	for key, want := range map[string]string{
		r.keyPlacement(c):    "q/q7/pl/2.5",
		r.keyChanEpoch(c):    "q/q7/cep/2.5",
		r.keyCursor(c):       "q/q7/cur/2.5",
		r.keyLineage(n):      "q/q7/lin/2.5.9",
		r.keyWatermark(c):    "q/q7/wm/2.5",
		r.keyDone(c):         "q/q7/done/2.5",
		r.keyPartDir(n):      "q/q7/pd/2.5.9",
		r.keyCheckpoint(c):   "q/q7/ck/2.5",
		r.keyReplay(3, n):    "q/q7/rp/3/2.5.9",
		r.keyBarrier():       "q/q7/bar",
		r.keyOpParallelism(): "q/q7/opp",
	} {
		if key != want {
			t.Errorf("key = %q, want %q", key, want)
		}
	}
}

func TestReplayDestRoundTrip(t *testing.T) {
	r := &Runner{qid: "q1"}
	store := gcs.New(storage.TestCostModel(), &metrics.Collector{})
	task := lineage.TaskName{Stage: 1, Channel: 2, Seq: 3}
	d1 := lineage.ChannelID{Stage: 4, Channel: 0}
	d2 := lineage.ChannelID{Stage: 5, Channel: 7}
	store.Update(func(tx *gcs.Txn) error {
		addReplayDest(tx, r.keyReplay(0, task), d1)
		addReplayDest(tx, r.keyReplay(0, task), d2)
		addReplayDest(tx, r.keyReplay(0, task), d1) // dedup
		return nil
	})
	store.View(func(tx *gcs.Txn) error {
		v, ok := tx.Get(r.keyReplay(0, task))
		if !ok {
			t.Fatal("replay entry missing")
		}
		dests, err := parseReplayDests(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dests, []lineage.ChannelID{d1, d2}) {
			t.Errorf("dests = %v", dests)
		}
		return nil
	})
	if _, err := parseReplayDests([]byte("garbage")); err == nil {
		t.Error("want error for malformed dests")
	}
	if got, err := parseReplayDests(nil); err != nil || got != nil {
		t.Errorf("empty dests = %v, %v", got, err)
	}
}

func TestCheckpointMarkRoundTrip(t *testing.T) {
	m := checkpointMark{
		Seq:    7,
		ObjKey: "ckpt/1.2/7",
		WM:     lineage.Watermark{{Input: 0, UpChannel: 3}: 11},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != m.Seq || got.ObjKey != m.ObjKey || !reflect.DeepEqual(got.WM, m.WM) {
		t.Errorf("round trip: %+v vs %+v", got, m)
	}
	// Empty watermark form.
	m2 := checkpointMark{Seq: 1, ObjKey: "k", WM: lineage.Watermark{}}
	got2, err := decodeCheckpoint(encodeCheckpoint(m2))
	if err != nil || got2.Seq != 1 || len(got2.WM) != 0 {
		t.Errorf("empty wm round trip: %+v, %v", got2, err)
	}
	for _, bad := range []string{"", "x", "notanint key"} {
		if _, err := decodeCheckpoint([]byte(bad)); err == nil {
			t.Errorf("decodeCheckpoint(%q) should fail", bad)
		}
	}
}

func TestTxHelpers(t *testing.T) {
	store := gcs.New(storage.TestCostModel(), &metrics.Collector{})
	store.Update(func(tx *gcs.Txn) error {
		txPutInt(tx, "n", 42)
		tx.Put("bad", []byte("not-a-number"))
		return nil
	})
	store.View(func(tx *gcs.Txn) error {
		if got := txGetInt(tx, "n", -1); got != 42 {
			t.Errorf("txGetInt = %d", got)
		}
		if got := txGetInt(tx, "missing", 7); got != 7 {
			t.Errorf("default = %d", got)
		}
		if got := txGetInt(tx, "bad", 9); got != 9 {
			t.Errorf("malformed should yield default, got %d", got)
		}
		if !txHas(tx, "n") || txHas(tx, "missing") {
			t.Error("txHas wrong")
		}
		return nil
	})
}
