package engine

import (
	"reflect"
	"testing"

	"quokka/internal/gcs"
	"quokka/internal/lineage"
	"quokka/internal/metrics"
	"quokka/internal/storage"
)

func TestKeySchema(t *testing.T) {
	c := lineage.ChannelID{Stage: 2, Channel: 5}
	n := lineage.TaskName{Stage: 2, Channel: 5, Seq: 9}
	for key, want := range map[string]string{
		keyPlacement(c):  "pl/2.5",
		keyChanEpoch(c):  "cep/2.5",
		keyCursor(c):     "cur/2.5",
		keyLineage(n):    "lin/2.5.9",
		keyWatermark(c):  "wm/2.5",
		keyDone(c):       "done/2.5",
		keyPartDir(n):    "pd/2.5.9",
		keyCheckpoint(c): "ck/2.5",
		keyReplay(3, n):  "rp/3/2.5.9",
	} {
		if key != want {
			t.Errorf("key = %q, want %q", key, want)
		}
	}
}

func TestReplayDestRoundTrip(t *testing.T) {
	store := gcs.New(storage.TestCostModel(), &metrics.Collector{})
	task := lineage.TaskName{Stage: 1, Channel: 2, Seq: 3}
	d1 := lineage.ChannelID{Stage: 4, Channel: 0}
	d2 := lineage.ChannelID{Stage: 5, Channel: 7}
	store.Update(func(tx *gcs.Txn) error {
		addReplayDest(tx, keyReplay(0, task), d1)
		addReplayDest(tx, keyReplay(0, task), d2)
		addReplayDest(tx, keyReplay(0, task), d1) // dedup
		return nil
	})
	store.View(func(tx *gcs.Txn) error {
		v, ok := tx.Get(keyReplay(0, task))
		if !ok {
			t.Fatal("replay entry missing")
		}
		dests, err := parseReplayDests(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dests, []lineage.ChannelID{d1, d2}) {
			t.Errorf("dests = %v", dests)
		}
		return nil
	})
	if _, err := parseReplayDests([]byte("garbage")); err == nil {
		t.Error("want error for malformed dests")
	}
	if got, err := parseReplayDests(nil); err != nil || got != nil {
		t.Errorf("empty dests = %v, %v", got, err)
	}
}

func TestCheckpointMarkRoundTrip(t *testing.T) {
	m := checkpointMark{
		Seq:    7,
		ObjKey: "ckpt/1.2/7",
		WM:     lineage.Watermark{{Input: 0, UpChannel: 3}: 11},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != m.Seq || got.ObjKey != m.ObjKey || !reflect.DeepEqual(got.WM, m.WM) {
		t.Errorf("round trip: %+v vs %+v", got, m)
	}
	// Empty watermark form.
	m2 := checkpointMark{Seq: 1, ObjKey: "k", WM: lineage.Watermark{}}
	got2, err := decodeCheckpoint(encodeCheckpoint(m2))
	if err != nil || got2.Seq != 1 || len(got2.WM) != 0 {
		t.Errorf("empty wm round trip: %+v, %v", got2, err)
	}
	for _, bad := range []string{"", "x", "notanint key"} {
		if _, err := decodeCheckpoint([]byte(bad)); err == nil {
			t.Errorf("decodeCheckpoint(%q) should fail", bad)
		}
	}
}

func TestTxHelpers(t *testing.T) {
	store := gcs.New(storage.TestCostModel(), &metrics.Collector{})
	store.Update(func(tx *gcs.Txn) error {
		txPutInt(tx, "n", 42)
		tx.Put("bad", []byte("not-a-number"))
		return nil
	})
	store.View(func(tx *gcs.Txn) error {
		if got := txGetInt(tx, "n", -1); got != 42 {
			t.Errorf("txGetInt = %d", got)
		}
		if got := txGetInt(tx, "missing", 7); got != 7 {
			t.Errorf("default = %d", got)
		}
		if got := txGetInt(tx, "bad", 9); got != 9 {
			t.Errorf("malformed should yield default, got %d", got)
		}
		if !txHas(tx, "n") || txHas(tx, "missing") {
			t.Error("txHas wrong")
		}
		return nil
	})
}
