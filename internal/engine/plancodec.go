package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// WorkerQuerySpec is everything a worker process needs to execute its
// share of one query: the physical plan, the execution config, and the
// cluster-level policies the head resolved at submit time (codec choices,
// group-commit interval, tracing). It travels gob-encoded inside the wire
// layer's START_QUERY message.
//
// Plans are serializable because every built-in operator spec and
// expression node is a data-only value type registered with gob (see
// internal/ops/gob.go and internal/expr/gob.go). Plans carrying
// user-supplied closure specs (ops.SpecFunc) fail at Encode time — process
// mode cannot ship closures.
type WorkerQuerySpec struct {
	QueryID string
	Plan    *Plan
	Cfg     Config

	// Resolved cluster-level policies: the worker must encode shuffle and
	// spill bytes exactly as the head's config resolved them (metrics and
	// replay byte-identity depend on one query never mixing codecs), and
	// run the same group-commit policy.
	ShuffleCompress bool
	SpillCompress   bool
	FlushEvery      time.Duration
	Tracing         bool
}

// Encode serializes the spec for the wire.
func (s *WorkerQuerySpec) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("engine: encode worker spec: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWorkerSpec parses a wire-shipped spec and validates its plan.
func DecodeWorkerSpec(data []byte) (*WorkerQuerySpec, error) {
	var s WorkerQuerySpec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("engine: decode worker spec: %w", err)
	}
	if s.Plan == nil {
		return nil, fmt.Errorf("engine: worker spec has no plan")
	}
	if err := s.Plan.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WorkerSpec builds the spec remote workers need to execute this runner's
// query. Called by the wire layer when RemoteExec.StartQuery ships the
// query out.
func (r *Runner) WorkerSpec() *WorkerQuerySpec {
	return &WorkerQuerySpec{
		QueryID:         r.qid,
		Plan:            r.plan,
		Cfg:             r.cfg,
		ShuffleCompress: r.shuffleCompress,
		SpillCompress:   r.spillCompress,
		FlushEvery:      r.flushEvery,
		Tracing:         r.rec != nil,
	}
}
