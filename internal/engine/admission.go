package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"quokka/internal/cluster"
	"quokka/internal/gcs"
	"quokka/internal/metrics"
	"quokka/internal/spill"
)

// This file holds the cluster's cross-query execution state: the admission
// controller that bounds how many queries execute at once (FIFO queueing
// beyond the bound), the per-worker CPU slot pools shared by every
// in-flight query, and the optional per-worker memory ledger that makes
// concurrent queries' spill accountants feel each other's pressure.
//
// Nothing here touches the per-query GCS namespaces: admission is a purely
// head-node concern, and a queued query has no execution state at all (its
// namespace is seeded only once it is admitted).

// DefaultAdmissionLimit is the default bound on concurrently admitted
// queries per cluster. Submissions beyond it queue FIFO.
const DefaultAdmissionLimit = 4

// clusterShared is the engine state shared by all queries on one cluster.
type clusterShared struct {
	nextQID atomic.Int64
	admit   *admission

	mu   sync.Mutex
	cpus map[cluster.WorkerID]chan struct{}
	mem  map[cluster.WorkerID]*spill.Ledger
	// workerBudget caps the accounted operator bytes per worker summed
	// over every in-flight query (0 = no cross-query cap; each query is
	// still governed by its own MemoryBudget).
	workerBudget int64
	met          *metrics.Collector

	// Cluster-level defaults installed by Configure options; a query's own
	// Config fields, when set, take precedence (see resolve sites in
	// NewRunner).
	cursorBufferDefault int64
	flushDefault        time.Duration
	// Compression is ON by default; the flags record the opt-out (the
	// encoding-0 escape hatch for debugging wire bytes).
	shuffleCompressOff bool
	spillCompressOff   bool
	// tracingOn enables the per-query flight recorder (off by default —
	// disabled tracing costs nothing on the task hot path).
	tracingOn bool

	// Process mode (experimental): listenAddr is the TCP address the head
	// serves its control plane on ("" = in-memory only), transportName
	// selects the wire transport implementation, and remoteExec — installed
	// by the wire layer once the server is up — reroutes task-manager
	// execution to worker processes.
	listenAddr    string
	transportName string
	remoteExec    RemoteExec

	// The cluster's shared group committer: ONE flusher serves every
	// admitted query, so concurrent queries' lineage commits fold into the
	// same GCS transactions. Refcounted — it runs only while at least one
	// group-commit query is in flight.
	gcMu   sync.Mutex
	gcRefs int
	gc     *groupCommitter
}

// committer returns the cluster's shared group committer, starting it on
// first acquisition. Every runner that acquires it must call
// committerDone after its last task-manager thread has exited.
func (s *clusterShared) committer(store gcs.Backend) *groupCommitter {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if s.gcRefs == 0 {
		s.gc = newGroupCommitter(store)
	}
	s.gcRefs++
	return s.gc
}

// committerDone releases one acquisition; the last release stops the
// flusher (safe: no registered query remains, so no requester can block).
func (s *clusterShared) committerDone() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if s.gcRefs--; s.gcRefs == 0 {
		s.gc.stop()
		s.gc = nil
	}
}

// sharedFor returns (creating on first use) the cluster's shared engine
// state.
func sharedFor(cl *cluster.Cluster) *clusterShared {
	return cl.SharedExec(func() any {
		return &clusterShared{
			admit: newAdmission(DefaultAdmissionLimit, cl.Metrics),
			cpus:  make(map[cluster.WorkerID]chan struct{}),
			mem:   make(map[cluster.WorkerID]*spill.Ledger),
			met:   cl.Metrics,
		}
	}).(*clusterShared)
}

// newQueryID mints a cluster-unique query id. Every piece of per-query
// state — GCS keys, flight mailbox slots, disk backups, spill namespaces —
// is prefixed with it, which is what lets N runners coexist on one cluster.
func (s *clusterShared) newQueryID() string {
	return fmt.Sprintf("q%d", s.nextQID.Add(1))
}

// cpuFor returns the worker's shared CPU slot pool, creating it with the
// given capacity on first use. Intra-operator partition lanes, modelled
// kernel work, and every concurrent query's channels all compete for the
// same slots, so admission of a second query never doubles the modelled
// cores of the machine.
//
// The pool models the worker's CORES, which are hardware, not a query
// knob: the first query to execute on a cluster sizes each worker's pool
// from its Config.CPUPerWorker, and later queries share that pool
// regardless of their own setting (documented on Config.CPUPerWorker).
// Capacity only shapes modelled timing — task outputs never depend on it.
func (s *clusterShared) cpuFor(w cluster.WorkerID, capacity int) chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.cpus[w]
	if !ok {
		if capacity <= 0 {
			capacity = 1
		}
		ch = make(chan struct{}, capacity)
		s.cpus[w] = ch
	}
	return ch
}

// ledgerFor returns the worker's cross-query memory ledger. Without a
// configured worker-wide budget the ledger is track-only: it never rejects
// (per-query budgets govern alone) but still records the worker's total
// accounted bytes across queries and the mem.worker.peak gauge.
func (s *clusterShared) ledgerFor(w cluster.WorkerID) *spill.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.mem[w]
	if !ok {
		l = spill.NewLedger(s.workerBudget, s.met)
		s.mem[w] = l
	}
	return l
}

// SetAdmissionLimit bounds how many queries the cluster executes
// concurrently; further submissions queue FIFO until a slot frees. n <= 0
// restores DefaultAdmissionLimit. Raising the limit immediately admits
// queued queries; lowering it only affects future admissions.
//
// Deprecated: use Configure(cl, WithAdmissionLimit(n)).
func SetAdmissionLimit(cl *cluster.Cluster, n int) {
	Configure(cl, WithAdmissionLimit(n))
}

// SetWorkerMemoryBudget installs a per-worker accounted-memory cap shared
// by ALL in-flight queries on the cluster: with it set, two concurrent
// budgeted queries on one worker spill against the worker's total, not
// just their own budgets. 0 (the default) disables the cross-query cap.
// Only queries submitted after the call observe the new ledger.
//
// Deprecated: use Configure(cl, WithWorkerMemoryBudget(bytes)).
func SetWorkerMemoryBudget(cl *cluster.Cluster, bytes int64) {
	Configure(cl, WithWorkerMemoryBudget(bytes))
}

// admission is a FIFO bounded-concurrency gate.
type admission struct {
	mu      sync.Mutex
	limit   int
	active  int
	waiters []chan struct{} // FIFO; closed slot == admitted
	met     *metrics.Collector
	// queued mirrors len(waiters) and running mirrors active as lock-free
	// gauges: task managers read them every poll round (adaptive
	// granularity) and must not contend on the admission mutex to do so.
	queued  atomic.Int32
	running atomic.Int32
}

func newAdmission(limit int, met *metrics.Collector) *admission {
	return &admission{limit: limit, met: met}
}

func (a *admission) setLimit(n int) {
	a.mu.Lock()
	a.limit = n
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued waiters while capacity remains.
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 && a.active < a.limit {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.active++
		close(w)
	}
	a.queued.Store(int32(len(a.waiters)))
	a.running.Store(int32(a.active))
}

// acquire blocks until the query is admitted or ctx is done. Admission is
// strictly FIFO: a submission never overtakes an earlier one.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if len(a.waiters) == 0 && a.active < a.limit {
		a.active++
		a.running.Store(int32(a.active))
		a.recordActiveLocked()
		a.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	a.waiters = append(a.waiters, w)
	a.queued.Store(int32(len(a.waiters)))
	a.mu.Unlock()
	a.met.Add(metrics.QueriesQueued, 1)

	select {
	case <-w:
		a.mu.Lock()
		a.recordActiveLocked()
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		admitted := false
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.queued.Store(int32(len(a.waiters)))
				admitted = false
				goto out
			}
		}
		// Not found in the queue: we were granted concurrently with the
		// cancellation. Give the slot back.
		admitted = true
	out:
		if admitted {
			a.active--
			a.grantLocked()
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

func (a *admission) recordActiveLocked() {
	a.met.Add(metrics.QueriesAdmitted, 1)
	a.met.Add(metrics.QueriesActive, 1)
	a.met.Max(metrics.QueriesPeak, int64(a.active))
}

// queuedNow returns how many queries are currently waiting in the
// admission queue — a live gauge (unlike the monotonic queries.queued
// counter) the engine uses as its load-pressure signal for adaptive task
// granularity. Lock-free: read from every task-manager poll round.
func (a *admission) queuedNow() int {
	return int(a.queued.Load())
}

// activeNow returns how many queries currently hold an admission slot.
// Together with queuedNow it forms the head-pressure signal: every
// admitted query polls and commits against the same head node, whether or
// not anything queues behind the gate.
func (a *admission) activeNow() int {
	return int(a.running.Load())
}

// release frees an admission slot and admits the next queued query.
func (a *admission) release() {
	a.mu.Lock()
	a.active--
	a.met.Add(metrics.QueriesActive, -1)
	a.grantLocked()
	a.mu.Unlock()
}
