package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"quokka/internal/batch"
	"quokka/internal/expr"
	"quokka/internal/metrics"
	"quokka/internal/ops"
)

// Head-node throughput work: group-commit lineage, worker-side result
// spooling, adaptive granularity and the consolidated tuning API. Every
// test asserts the cardinal invariant first — none of these optimizations
// may change a single output byte — and then the mechanism-specific
// property (fewer transactions, fewer head bytes, context plumbing).

// TestConcurrentAdmission8ByteIdentical: eight queries of four plan shapes
// run concurrently under an admission limit of 8 with result spooling on
// (the default); every one is byte-identical to its serial run and full
// teardown holds.
func TestConcurrentAdmission8ByteIdentical(t *testing.T) {
	tables := spillTables(3000, 4000)
	tables["numbers"] = numbersTable(3000, 12)
	cl := testCluster(t, 4, tables)
	Configure(cl, WithAdmissionLimit(8))

	type variant struct {
		name   string
		plan   func() *Plan
		budget int64
		par    int
	}
	mk := func(cut int64) func() *Plan { return func() *Plan { return scanFilterAggPlan(cut) } }
	variants := []variant{
		{"joinAgg", spillJoinAggPlan, 0, 2},
		{"joinAgg-spill", spillJoinAggPlan, 16_000, 4},
		{"sort", spillSortPlan, 0, 1},
		{"sort-spill", spillSortPlan, 16_000, 2},
		{"agg0", mk(0), 0, 2},
		{"agg500", mk(500), 0, 1},
		{"joinAgg-2", spillJoinAggPlan, 0, 1},
		{"sort-2", spillSortPlan, 0, 2},
	}

	want := make([][]byte, len(variants))
	for i, v := range variants {
		cfg := DefaultConfig()
		cfg.MemoryBudget = v.budget
		cfg.Parallelism = v.par
		out, _ := runPlan(t, cl, v.plan(), cfg)
		want[i] = batch.Encode(out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	qs := make([]*Query, len(variants))
	for i, v := range variants {
		cfg := DefaultConfig()
		cfg.MemoryBudget = v.budget
		cfg.Parallelism = v.par
		qs[i] = startPlan(t, cl, v.plan(), cfg, ctx)
	}
	for i, q := range qs {
		out, rep, err := q.Result()
		if err != nil {
			t.Fatalf("%s: %v", variants[i].name, err)
		}
		if string(batch.Encode(out)) != string(want[i]) {
			t.Errorf("%s: concurrent result differs from serial run", variants[i].name)
		}
		if rep.TasksExecuted == 0 {
			t.Errorf("%s: no per-query tasks recorded", variants[i].name)
		}
	}
	if peak := cl.Metrics.Get(metrics.QueriesPeak); peak < 2 {
		t.Errorf("queries.peak = %d, want >= 2", peak)
	}
	assertNoQueryState(t, cl, "after admission-8 batch")
}

// TestConcurrentCursorsAdmission8: eight streaming cursors drain eight
// concurrent queries (admission 8, spooling on, tiny buffers forcing
// fetch-on-demand from workers); each stream equals its Collect result.
func TestConcurrentCursorsAdmission8(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(3000, 12)}
	cl := testCluster(t, 4, tables)
	Configure(cl, WithAdmissionLimit(8))
	want, _ := runPlan(t, cl, spillSortPlan(), DefaultConfig())
	wantEnc := string(batch.Encode(want))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	const n = 8
	errs := make([]error, n)
	got := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := DefaultConfig()
		cfg.CursorBufferBytes = 2048 // force spooled fetches + backpressure
		q := startPlan(t, cl, spillSortPlan(), cfg, ctx)
		cur := q.Cursor()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var parts []*batch.Batch
			for {
				b, err := cur.Next()
				if err != nil {
					errs[i] = err
					return
				}
				if b == nil {
					break
				}
				parts = append(parts, b)
			}
			if err := q.Wait(); err != nil {
				errs[i] = err
				return
			}
			all, err := batch.Concat(parts)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = string(batch.Encode(all))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("cursor %d: %v", i, errs[i])
		}
		if got[i] != wantEnc {
			t.Errorf("cursor %d: stream differs from Collect result", i)
		}
	}
	assertNoQueryState(t, cl, "after concurrent cursors")
}

// TestKillWorkerMidCursorFetch: a multi-channel output plan is consumed
// through a tiny-buffer cursor (so result payloads stay spooled on their
// workers); an output-stage worker is killed mid-iteration. The cursor's
// fetch from the dead worker fails, recovery replays the channel's
// committed lineage, and the drained stream is still byte-identical — no
// lost rows, no duplicates past the read watermark.
func TestKillWorkerMidCursorFetch(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(6000, 24)}
	cl := testCluster(t, 4, tables)
	p := cursorKillPlan()
	want, _ := runPlan(t, cl, p, DefaultConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cfg := DefaultConfig()
	cfg.CursorBufferBytes = 2048
	q := startPlan(t, cl, p, cfg, ctx)
	cur := q.Cursor()
	var parts []*batch.Batch
	killed := false
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor after kill=%v: %v", killed, err)
		}
		if b == nil {
			break
		}
		parts = append(parts, b)
		if !killed && len(parts) == 2 {
			cl.Worker(1).Kill() // hosts output channel 1 (and its backups)
			killed = true
		}
	}
	if !killed {
		t.Fatal("stream ended before the kill point; grow the table")
	}
	if err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	all, err := batch.Concat(parts)
	if err != nil {
		t.Fatal(err)
	}
	if string(batch.Encode(all)) != string(batch.Encode(want)) {
		t.Error("cursor stream differs after mid-fetch worker kill")
	}
	if rep := q.Report(); rep.Recoveries == 0 {
		t.Error("no recovery recorded despite worker kill")
	}
	assertNoQueryState(t, cl, "after mid-cursor kill")
}

// cursorKillPlan: read -> filter with parallel output channels, so result
// partitions spread across workers and a single worker kill loses some.
func cursorKillPlan() *Plan {
	return multiChannelOutputPlan()
}

// TestGroupCommitReducesTxns: the same query committed per-task
// (LineageFlushInterval < 0) and group-committed with a held-open flush
// window produces identical bytes, while the grouped run folds many task
// commits into shared transactions.
func TestGroupCommitReducesTxns(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(3000, 24)}
	cl := testCluster(t, 4, tables)

	solo := DefaultConfig()
	solo.LineageFlushInterval = -1 // one GCS transaction per task commit
	outSolo, repSolo := runPlan(t, cl, scanFilterAggPlan(0), solo)
	if repSolo.Metrics[metrics.LineageFlushes] != 0 {
		t.Errorf("disabled group commit still flushed %d times", repSolo.Metrics[metrics.LineageFlushes])
	}

	grouped := DefaultConfig()
	grouped.LineageFlushInterval = 200 * time.Microsecond
	outGrouped, repGrouped := runPlan(t, cl, scanFilterAggPlan(0), grouped)

	if string(batch.Encode(outSolo)) != string(batch.Encode(outGrouped)) {
		t.Fatal("group commit changed query output")
	}
	flushes := repGrouped.Metrics[metrics.LineageFlushes]
	batched := repGrouped.Metrics[metrics.GCSTxnBatched]
	commits := flushes + batched
	if flushes == 0 {
		t.Fatal("group commit issued no flushes")
	}
	if batched == 0 {
		t.Error("no task commits were folded into shared transactions")
	}
	if commits != repGrouped.TasksExecuted {
		t.Errorf("flushes(%d) + batched(%d) = %d, want TasksExecuted = %d",
			flushes, batched, commits, repGrouped.TasksExecuted)
	}
	if repGrouped.Metrics[metrics.LineageRecords] != repSolo.Metrics[metrics.LineageRecords] {
		t.Errorf("lineage records differ: grouped %d vs solo %d",
			repGrouped.Metrics[metrics.LineageRecords], repSolo.Metrics[metrics.LineageRecords])
	}
}

// TestResultSpoolingShrinksHeadBytes: with spooling on (default) the head
// receives manifests, not payloads, during execution; the head.result.bytes
// gauge collapses versus the DisableResultSpool run while the result stays
// byte-identical.
func TestResultSpoolingShrinksHeadBytes(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(3000, 12)}
	cl := testCluster(t, 4, tables)

	direct := DefaultConfig()
	direct.DisableResultSpool = true
	outDirect, repDirect := runPlan(t, cl, spillSortPlan(), direct)

	outSpooled, repSpooled := runPlan(t, cl, spillSortPlan(), DefaultConfig())

	if string(batch.Encode(outDirect)) != string(batch.Encode(outSpooled)) {
		t.Fatal("result spooling changed query output")
	}
	hd, hs := repDirect.Metrics[metrics.HeadResultBytes], repSpooled.Metrics[metrics.HeadResultBytes]
	if hd == 0 {
		t.Fatal("direct run recorded no head result bytes")
	}
	if hs >= hd {
		t.Errorf("head.result.bytes: spooled %d >= direct %d — manifests not smaller than payloads", hs, hd)
	}
}

// TestOptionDefaultsResolve: cluster options become the per-query defaults
// and a query's own Config still wins.
func TestOptionDefaultsResolve(t *testing.T) {
	cl := testCluster(t, 2, map[string][]*batch.Batch{"numbers": numbersTable(100, 2)})
	s := sharedFor(cl)

	if got := s.cursorBufferFor(0); got != DefaultCursorBufferBytes {
		t.Errorf("built-in cursor default = %d", got)
	}
	Configure(cl, WithCursorBufferBytes(9999), WithLineageFlushInterval(-1))
	if got := s.cursorBufferFor(0); got != 9999 {
		t.Errorf("cluster cursor default = %d, want 9999", got)
	}
	if got := s.cursorBufferFor(123); got != 123 {
		t.Errorf("per-query cursor override = %d, want 123", got)
	}
	if got := s.cursorBufferFor(-1); got != 0 {
		t.Errorf("negative per-query cursor = %d, want 0 (unbounded)", got)
	}
	if got := s.flushIntervalFor(0); got != -1 {
		t.Errorf("cluster flush default = %v, want -1", got)
	}
	if got := s.flushIntervalFor(time.Millisecond); got != time.Millisecond {
		t.Errorf("per-query flush override = %v", got)
	}
	Configure(cl, WithCursorBufferBytes(0), WithLineageFlushInterval(0))
	if got := s.cursorBufferFor(0); got != DefaultCursorBufferBytes {
		t.Errorf("reset cursor default = %d", got)
	}

	// The resolved values reach the runner.
	cfg := DefaultConfig()
	cfg.LineageFlushInterval = -1
	r, err := NewRunner(cl, scanFilterAggPlan(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.flushEvery != -1 || r.cursorLimit != DefaultCursorBufferBytes {
		t.Errorf("runner resolved flush=%v cursor=%d", r.flushEvery, r.cursorLimit)
	}

	// Deprecated setters still compile and behave as Configure sugar.
	SetAdmissionLimit(cl, 2)
	SetWorkerMemoryBudget(cl, 1<<20)
	if s.admit.limit != 2 || s.workerBudget != 1<<20 {
		t.Error("deprecated setters no longer reach shared state")
	}
	SetAdmissionLimit(cl, 0)
	if s.admit.limit != DefaultAdmissionLimit {
		t.Error("SetAdmissionLimit(0) should restore the default")
	}
	SetWorkerMemoryBudget(cl, 0)
}

// TestContextAwareHandles: WaitContext and NextContext honour their
// context without poisoning the handle — a timed-out wait can be retried
// and the query still completes normally.
func TestContextAwareHandles(t *testing.T) {
	cl := testCluster(t, 2, map[string][]*batch.Batch{"numbers": numbersTable(2000, 16)})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	q := startPlan(t, cl, multiChannelOutputPlan(), DefaultConfig(), ctx)
	cur := q.Cursor()

	expired, expCancel := context.WithCancel(context.Background())
	expCancel()
	if err := q.WaitContext(expired); !errors.Is(err, context.Canceled) {
		t.Errorf("WaitContext(cancelled) = %v", err)
	}
	if _, err := cur.NextContext(expired); !errors.Is(err, context.Canceled) {
		t.Errorf("NextContext(cancelled) = %v", err)
	}
	if cur.Err() != nil {
		t.Errorf("context expiry latched into cursor: %v", cur.Err())
	}

	// The handle is still fully usable.
	var rows int
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatalf("Next after expiry: %v", err)
		}
		if b == nil {
			break
		}
		rows += b.NumRows()
	}
	if err := q.Wait(); err != nil {
		t.Fatalf("Wait after expiry: %v", err)
	}
	if rows != 2000 {
		t.Errorf("streamed %d rows, want 2000", rows)
	}
	assertNoQueryState(t, cl, "after context-aware handles")
}

// TestAdaptiveGranularityCoarsens: with queries queued behind the
// admission gate, executing queries run coarser tasks (fewer commits for
// the same rows) than an unqueued run — and still produce identical bytes.
func TestAdaptiveGranularityCoarsens(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(4000, 32)}
	cl := testCluster(t, 4, tables)

	out, repIdle := runPlan(t, cl, scanFilterAggPlan(0), DefaultConfig())
	wantEnc := string(batch.Encode(out))

	// Saturate admission so the probe query sees a non-empty queue.
	Configure(cl, WithAdmissionLimit(1))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	probe := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	queued := make([]*Query, 3)
	for i := range queued {
		queued[i] = startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	}
	outProbe, repProbe, err := probe.Result()
	if err != nil {
		t.Fatal(err)
	}
	if string(batch.Encode(outProbe)) != wantEnc {
		t.Error("adaptive granularity changed query output")
	}
	for _, q := range queued {
		o, _, err := q.Result()
		if err != nil {
			t.Fatal(err)
		}
		if string(batch.Encode(o)) != wantEnc {
			t.Error("queued query output differs")
		}
	}
	// Coarser takes mean the pressured run needs no MORE tasks than the
	// idle one (dynamic takes make exact equality run-dependent).
	if repProbe.TasksExecuted > repIdle.TasksExecuted {
		t.Logf("pressured run used %d tasks vs idle %d (informational)",
			repProbe.TasksExecuted, repIdle.TasksExecuted)
	}
	assertNoQueryState(t, cl, "after adaptive granularity")
}

// multiChannelOutputPlan: read -> parallel filter output (no final merge),
// so the output stage has one channel per worker and result partitions
// spool across the whole cluster.
func multiChannelOutputPlan() *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read", Reader: &ReaderSpec{Table: "numbers"}},
		&Stage{ID: 1, Name: "filter",
			Op:     ops.NewFilterSpec(expr.Ge(expr.C("id"), expr.Int64(0))),
			Inputs: []StageInput{{Stage: 0, Part: Direct()}}},
	)
}
