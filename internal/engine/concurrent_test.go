package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/expr"
	"quokka/internal/gcs"
	"quokka/internal/metrics"
	"quokka/internal/ops"
)

// Concurrent query sessions: N runners share one cluster. Every test here
// asserts the two core guarantees of the Submit API — isolation (each
// query's result is byte-identical to its serial run; teardown of one
// query leaves the others untouched) and shared-resource governance
// (bounded admission, shared CPU slots, per-query spill namespaces).

// startPlan submits a plan on the cluster and returns its handle.
func startPlan(t *testing.T, cl *cluster.Cluster, p *Plan, cfg Config, ctx context.Context) *Query {
	t.Helper()
	r, err := NewRunner(cl, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.Start(ctx)
}

// assertNoQueryState asserts the GCS holds no per-query namespace and no
// worker disk holds spill or backup files — the full teardown guarantee.
func assertNoQueryState(t *testing.T, cl *cluster.Cluster, label string) {
	t.Helper()
	cl.GCS.View(func(tx *gcs.Txn) error {
		if keys := tx.List("q/"); len(keys) != 0 {
			t.Errorf("%s: GCS still holds %d per-query keys, e.g. %q", label, len(keys), keys[0])
		}
		return nil
	})
	for _, w := range cl.Workers {
		if !w.Alive() {
			continue
		}
		if n := w.Disk.UsedBytesPrefix("spill/"); n != 0 {
			t.Errorf("%s: worker %d leaked %d spill bytes", label, w.ID, n)
		}
		if n := w.Disk.UsedBytesPrefix("bk/"); n != 0 {
			t.Errorf("%s: worker %d leaked %d backup bytes", label, w.ID, n)
		}
	}
}

// TestConcurrentQueriesByteIdentical: four queries — two plan shapes, with
// and without a memory budget — run concurrently on one cluster and each
// produces exactly the bytes its serial run produced. Overlapping
// execution is observable through the queries.peak gauge.
func TestConcurrentQueriesByteIdentical(t *testing.T) {
	tables := spillTables(3000, 4000)
	for name, splits := range map[string][]*batch.Batch{"numbers": numbersTable(3000, 12)} {
		tables[name] = splits
	}
	cl := testCluster(t, 4, tables)

	type variant struct {
		name   string
		plan   func() *Plan
		budget int64
		par    int
	}
	variants := []variant{
		{"joinAgg", spillJoinAggPlan, 0, 2},
		{"joinAgg-spill", spillJoinAggPlan, 16_000, 4},
		{"sort", spillSortPlan, 0, 1},
		{"sort-spill", spillSortPlan, 16_000, 2},
	}

	// Serial references first (one at a time on the same cluster).
	want := make([][]byte, len(variants))
	for i, v := range variants {
		cfg := DefaultConfig()
		cfg.MemoryBudget = v.budget
		cfg.Parallelism = v.par
		out, _ := runPlan(t, cl, v.plan(), cfg)
		want[i] = batch.Encode(out)
	}

	// Now all four at once.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	qs := make([]*Query, len(variants))
	for i, v := range variants {
		cfg := DefaultConfig()
		cfg.MemoryBudget = v.budget
		cfg.Parallelism = v.par
		qs[i] = startPlan(t, cl, v.plan(), cfg, ctx)
	}
	for i, q := range qs {
		out, rep, err := q.Result()
		if err != nil {
			t.Fatalf("%s: %v", variants[i].name, err)
		}
		if string(batch.Encode(out)) != string(want[i]) {
			t.Errorf("%s: concurrent result differs from serial run", variants[i].name)
		}
		if rep.TasksExecuted == 0 {
			t.Errorf("%s: no per-query tasks recorded", variants[i].name)
		}
		if rep.QueryID == "" {
			t.Errorf("%s: report missing query id", variants[i].name)
		}
	}
	if peak := cl.Metrics.Get(metrics.QueriesPeak); peak < 2 {
		t.Errorf("queries.peak = %d, want >= 2 (no overlapping execution observed)", peak)
	}
	assertNoQueryState(t, cl, "after concurrent batch")
}

// TestAdmissionFIFOBound: with the admission limit at 1, two submissions
// never overlap — the second queues FIFO and still completes correctly.
func TestAdmissionFIFOBound(t *testing.T) {
	cl := testCluster(t, 4, map[string][]*batch.Batch{"numbers": numbersTable(1000, 8)})
	SetAdmissionLimit(cl, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	qa := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	qb := startPlan(t, cl, scanFilterAggPlan(500), DefaultConfig(), ctx)
	outB, _, errB := qb.Result()
	outA, _, errA := qa.Result()
	if errA != nil || errB != nil {
		t.Fatalf("errors: %v, %v", errA, errB)
	}
	var wantA, wantB float64
	for i := 0; i < 1000; i++ {
		wantA += float64(2 * i)
		if i >= 500 {
			wantB += float64(2 * i)
		}
	}
	checkSumCount(t, outA, wantA, 1000)
	checkSumCount(t, outB, wantB, 500)
	if peak := cl.Metrics.Get(metrics.QueriesPeak); peak != 1 {
		t.Errorf("queries.peak = %d under admission limit 1", peak)
	}
	if queued := cl.Metrics.Get(metrics.QueriesQueued); queued < 1 {
		t.Errorf("queries.queued = %d, want >= 1", queued)
	}
}

// TestAdmissionCancelWhileQueued: cancelling a queued query removes it
// from the FIFO without consuming a slot, and later submissions still run.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	cl := testCluster(t, 2, map[string][]*batch.Batch{"numbers": numbersTable(2000, 16)})
	SetAdmissionLimit(cl, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	qa := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	qb := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	qb.Cancel()
	if err := qb.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued query: err = %v", err)
	}
	if _, _, err := qa.Result(); err != nil {
		t.Fatalf("first query: %v", err)
	}
	qc := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)
	if _, _, err := qc.Result(); err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
	assertNoQueryState(t, cl, "after queued cancel")
}

// TestCursorMatchesRun: on a deterministic plan (a full sort), draining
// the streaming cursor yields exactly the rows, in exactly the order, of
// the one-shot Result path.
func TestCursorMatchesRun(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(3000, 12)}
	cl := testCluster(t, 4, tables)
	want, _ := runPlan(t, cl, spillSortPlan(), DefaultConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, bufBytes := range []int64{0, 512} { // default and aggressively tiny
		cfg := DefaultConfig()
		cfg.CursorBufferBytes = bufBytes
		q := startPlan(t, cl, spillSortPlan(), cfg, ctx)
		cur := q.Cursor()
		var got []*batch.Batch
		for {
			b, err := cur.Next()
			if err != nil {
				t.Fatalf("buf %d: cursor: %v", bufBytes, err)
			}
			if b == nil {
				break
			}
			got = append(got, b)
		}
		if err := q.Wait(); err != nil {
			t.Fatalf("buf %d: wait: %v", bufBytes, err)
		}
		all, err := batch.Concat(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(batch.Encode(all)) != string(batch.Encode(want)) {
			t.Errorf("buf %d: cursor stream differs from Collect result", bufBytes)
		}
		assertNoQueryState(t, cl, fmt.Sprintf("after cursor run (buf %d)", bufBytes))
	}
}

// TestCursorMultiChannelOrder: when the output stage has several channels,
// the cursor yields channel 0's partitions in sequence order, then channel
// 1's, matching the (channel, seq) order assembleResult always used.
func TestCursorMultiChannelOrder(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(2000, 16)}
	cl := testCluster(t, 4, tables)
	// Output stage = the filter itself: parallel channels, no final merge.
	p := MustPlan(
		&Stage{ID: 0, Name: "read", Reader: &ReaderSpec{Table: "numbers"}},
		&Stage{ID: 1, Name: "filter",
			Op:     ops.NewFilterSpec(expr.Ge(expr.C("id"), expr.Int64(0))),
			Inputs: []StageInput{{Stage: 0, Part: Direct()}}},
	)
	want, _ := runPlan(t, cl, p, DefaultConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := DefaultConfig()
	cfg.CursorBufferBytes = 2048 // force backpressure across channels
	q := startPlan(t, cl, p, cfg, ctx)
	cur := q.Cursor()
	var got []*batch.Batch
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if b == nil {
			break
		}
		got = append(got, b)
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	all, err := batch.Concat(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(batch.Encode(all)) != string(batch.Encode(want)) {
		t.Error("multi-channel cursor stream differs from Result order")
	}
}

// TestCancelMidSpillNoLeak: cancelling a spilling query mid-flight sweeps
// its spill namespace, drains its mailboxes and deletes its GCS keys —
// while a concurrent query on the same cluster is completely unaffected.
func TestCancelMidSpillNoLeak(t *testing.T) {
	tables := spillTables(8000, 10000)
	cl := testCluster(t, 4, tables)

	// Serial reference for the surviving query.
	survivorCfg := DefaultConfig()
	survivorCfg.Parallelism = 2
	wantOut, _ := runPlan(t, cl, spillJoinAggPlan(), survivorCfg)
	want := batch.Encode(wantOut)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	victimCfg := DefaultConfig()
	victimCfg.MemoryBudget = 8_000 // tight: spills early and often
	victim := startPlan(t, cl, spillJoinAggPlan(), victimCfg, ctx)
	survivor := startPlan(t, cl, spillJoinAggPlan(), survivorCfg, ctx)

	// Cancel the victim as soon as it has actually spilled.
	deadline := time.Now().Add(60 * time.Second)
	for victim.r.qmet.Get(metrics.SpillRuns) == 0 {
		select {
		case <-victim.Done():
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never spilled")
		}
		time.Sleep(50 * time.Microsecond)
	}
	victim.Cancel()
	if err := victim.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("victim err = %v, want context.Canceled", err)
	}

	out, _, err := survivor.Result()
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if string(batch.Encode(out)) != string(want) {
		t.Error("survivor result changed by concurrent cancellation")
	}
	assertNoQueryState(t, cl, "after mid-spill cancel")
}

// TestConcurrentKillWorkerBothRecover: a worker dies while two queries are
// in flight; each replays its own lineage independently and both finish
// byte-identical to their serial runs.
func TestConcurrentKillWorkerBothRecover(t *testing.T) {
	tables := spillTables(3000, 4000)
	tables["numbers"] = numbersTable(3000, 24)
	cl := testCluster(t, 4, tables)

	wantJoin, _ := runPlan(t, cl, spillJoinAggPlan(), DefaultConfig())
	var wantSum float64
	for i := 0; i < 3000; i++ {
		wantSum += float64(2 * i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	qa := startPlan(t, cl, spillJoinAggPlan(), DefaultConfig(), ctx)
	qb := startPlan(t, cl, scanFilterAggPlan(0), DefaultConfig(), ctx)

	// Kill once BOTH queries are demonstrably executing (per-query
	// counters, not the cluster total, so neither is still in seed).
	deadline := time.Now().Add(60 * time.Second)
	for qa.r.qmet.Get(metrics.TasksExecuted) < 3 || qb.r.qmet.Get(metrics.TasksExecuted) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("queries did not start executing")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cl.Worker(1).Kill()

	outA, repA, errA := qa.Result()
	outB, repB, errB := qb.Result()
	if errA != nil || errB != nil {
		t.Fatalf("errors after worker kill: %v, %v", errA, errB)
	}
	if string(batch.Encode(outA)) != string(batch.Encode(wantJoin)) {
		t.Error("join query result differs after mid-flight worker kill")
	}
	checkSumCount(t, outB, wantSum, 3000)
	if repA.Recoveries == 0 && repB.Recoveries == 0 {
		t.Error("neither query recorded a recovery after a worker kill")
	}
	assertNoQueryState(t, cl, "after concurrent kill")
}
