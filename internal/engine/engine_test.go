package engine

import (
	"context"
	"testing"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/expr"
	"quokka/internal/metrics"
	"quokka/internal/ops"
	"quokka/internal/storage"
)

// testCluster builds an n-worker cluster with no I/O sleeps and loads the
// given tables.
func testCluster(t *testing.T, n int, tables map[string][]*batch.Batch) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Options{Workers: n, Cost: storage.TestCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	for name, splits := range tables {
		WriteTable(cl.ObjStore, name, splits)
	}
	return cl
}

// numbersTable produces a table of ints 0..n-1 with value column v = i*2,
// split into the given number of splits.
func numbersTable(n, splits int) []*batch.Batch {
	s := batch.NewSchema(batch.F("id", batch.Int64), batch.F("v", batch.Float64))
	per := (n + splits - 1) / splits
	var out []*batch.Batch
	for i := 0; i < n; i += per {
		hi := i + per
		if hi > n {
			hi = n
		}
		ids := make([]int64, hi-i)
		vs := make([]float64, hi-i)
		for j := range ids {
			ids[j] = int64(i + j)
			vs[j] = float64((i + j) * 2)
		}
		out = append(out, batch.MustNew(s, []*batch.Column{
			batch.NewIntColumn(ids), batch.NewFloatColumn(vs),
		}))
	}
	return out
}

// scanFilterAggPlan: read numbers, keep id >= cut, global sum(v) count(*).
func scanFilterAggPlan(cut int64) *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read", Reader: &ReaderSpec{Table: "numbers"}},
		&Stage{ID: 1, Name: "filter",
			Op:     ops.NewFilterSpec(expr.Ge(expr.C("id"), expr.Int64(cut))),
			Inputs: []StageInput{{Stage: 0, Part: Direct()}}},
		&Stage{ID: 2, Name: "agg", Parallelism: 1,
			Op:     ops.NewHashAggSpec(nil, ops.Sum("s", expr.C("v")), ops.CountStar("c")),
			Inputs: []StageInput{{Stage: 1, Part: Single()}}},
	)
}

func runPlan(t *testing.T, cl *cluster.Cluster, p *Plan, cfg Config) (*batch.Batch, *Report) {
	t.Helper()
	r, err := NewRunner(cl, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, rep, err := r.Run(ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out, rep
}

func checkSumCount(t *testing.T, out *batch.Batch, wantSum float64, wantCount int64) {
	t.Helper()
	if out == nil || out.NumRows() != 1 {
		t.Fatalf("result: %v", out)
	}
	if got := out.Col("s").Floats[0]; got != wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	if got := out.Col("c").Ints[0]; got != wantCount {
		t.Errorf("count = %d, want %d", got, wantCount)
	}
}

func TestScanFilterAggregate(t *testing.T) {
	const n = 1000
	cl := testCluster(t, 4, map[string][]*batch.Batch{"numbers": numbersTable(n, 8)})
	out, rep := runPlan(t, cl, scanFilterAggPlan(500), DefaultConfig())
	// ids 500..999, v = 2*id => sum = 2 * (500+...+999)
	var want float64
	for i := 500; i < n; i++ {
		want += float64(2 * i)
	}
	checkSumCount(t, out, want, 500)
	if rep.TasksExecuted == 0 {
		t.Error("no tasks recorded")
	}
	if rep.Recoveries != 0 {
		t.Errorf("unexpected recoveries: %d", rep.Recoveries)
	}
}

func TestScanFilterAggregateSingleWorker(t *testing.T) {
	cl := testCluster(t, 1, map[string][]*batch.Batch{"numbers": numbersTable(100, 3)})
	out, _ := runPlan(t, cl, scanFilterAggPlan(0), DefaultConfig())
	checkSumCount(t, out, float64(99*100), 100)
}

func TestStagewiseMatchesPipelined(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(500, 6)}
	for _, cfg := range []Config{DefaultConfig(), SparkConfig()} {
		cl := testCluster(t, 3, tables)
		out, _ := runPlan(t, cl, scanFilterAggPlan(100), cfg)
		var want float64
		for i := 100; i < 500; i++ {
			want += float64(2 * i)
		}
		checkSumCount(t, out, want, 400)
	}
}

func TestStaticDependencyModes(t *testing.T) {
	tables := map[string][]*batch.Batch{"numbers": numbersTable(300, 10)}
	for _, k := range []int{1, 4, 128} {
		cfg := DefaultConfig()
		cfg.Dynamic = false
		cfg.StaticBatch = k
		cl := testCluster(t, 2, tables)
		out, _ := runPlan(t, cl, scanFilterAggPlan(0), cfg)
		checkSumCount(t, out, float64(299*300), 300)
	}
}

// joinTables: dim(k 0..9, name) and fact(k = id%10, v).
func joinTables(nFact int) map[string][]*batch.Batch {
	ds := batch.NewSchema(batch.F("k", batch.Int64), batch.F("name", batch.String))
	dk := make([]int64, 10)
	dn := make([]string, 10)
	for i := range dk {
		dk[i] = int64(i)
		dn[i] = string(rune('a' + i))
	}
	dim := batch.MustNew(ds, []*batch.Column{batch.NewIntColumn(dk), batch.NewStringColumn(dn)})
	fs := batch.NewSchema(batch.F("fk", batch.Int64), batch.F("v", batch.Float64))
	var facts []*batch.Batch
	per := 50
	for i := 0; i < nFact; i += per {
		hi := i + per
		if hi > nFact {
			hi = nFact
		}
		ks := make([]int64, hi-i)
		vs := make([]float64, hi-i)
		for j := range ks {
			ks[j] = int64((i + j) % 10)
			vs[j] = 1
		}
		facts = append(facts, batch.MustNew(fs, []*batch.Column{
			batch.NewIntColumn(ks), batch.NewFloatColumn(vs),
		}))
	}
	return map[string][]*batch.Batch{"dim": {dim}, "fact": facts}
}

// joinPlan: fact JOIN dim ON fk=k, then group by name counting rows.
func joinPlan() *Plan {
	return MustPlan(
		&Stage{ID: 0, Name: "read-dim", Reader: &ReaderSpec{Table: "dim"}},
		&Stage{ID: 1, Name: "read-fact", Reader: &ReaderSpec{Table: "fact"}},
		&Stage{ID: 2, Name: "join",
			Op: ops.NewHashJoinSpec(ops.InnerJoin, []string{"k"}, []string{"fk"}),
			Inputs: []StageInput{
				{Stage: 0, Part: Hash("k"), Phase: 0},
				{Stage: 1, Part: Hash("fk"), Phase: 1},
			}},
		&Stage{ID: 3, Name: "agg", Parallelism: 1,
			Op:     ops.NewHashAggSpec([]string{"name"}, ops.CountStar("c"), ops.Sum("sv", expr.C("v"))),
			Inputs: []StageInput{{Stage: 2, Part: Single()}}},
	)
}

func TestJoinPipeline(t *testing.T) {
	const nFact = 400
	cl := testCluster(t, 4, joinTables(nFact))
	out, _ := runPlan(t, cl, joinPlan(), DefaultConfig())
	if out == nil || out.NumRows() != 10 {
		t.Fatalf("join result: %v", out)
	}
	var total int64
	for i := 0; i < out.NumRows(); i++ {
		total += out.Col("c").Ints[i]
	}
	if total != nFact {
		t.Errorf("join total = %d, want %d", total, nFact)
	}
	// Every key appears nFact/10 times.
	for i := 0; i < out.NumRows(); i++ {
		if out.Col("c").Ints[i] != nFact/10 {
			t.Errorf("group %s count = %d", out.Col("name").Strings[i], out.Col("c").Ints[i])
		}
	}
}

func TestJoinAcrossConfigs(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), SparkConfig(), TrinoConfig()} {
		cl := testCluster(t, 3, joinTables(200))
		out, _ := runPlan(t, cl, joinPlan(), cfg)
		if out == nil || out.NumRows() != 10 {
			t.Fatalf("cfg %s/%s: result %v", cfg.Execution, cfg.FT, out)
		}
		var total int64
		for i := 0; i < out.NumRows(); i++ {
			total += out.Col("c").Ints[i]
		}
		if total != 200 {
			t.Errorf("cfg %s/%s: total = %d", cfg.Execution, cfg.FT, total)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(); err == nil {
		t.Error("empty plan should fail")
	}
	// Reader with inputs.
	if _, err := NewPlan(&Stage{ID: 0, Reader: &ReaderSpec{Table: "t"},
		Inputs: []StageInput{{Stage: 0}}}); err == nil {
		t.Error("reader with inputs should fail")
	}
	// Two output stages.
	if _, err := NewPlan(
		&Stage{ID: 0, Reader: &ReaderSpec{Table: "a"}},
		&Stage{ID: 1, Reader: &ReaderSpec{Table: "b"}},
	); err == nil {
		t.Error("two sinks should fail")
	}
	// Forward reference.
	if _, err := NewPlan(
		&Stage{ID: 0, Op: ops.NewLimitSpec(1), Inputs: []StageInput{{Stage: 0}}},
	); err == nil {
		t.Error("self reference should fail")
	}
	p := joinPlan()
	if got := p.PipelineDepth(); got != 3 {
		t.Errorf("PipelineDepth = %d, want 3", got)
	}
	if out, _ := p.OutputStage(); out != 3 {
		t.Errorf("OutputStage = %d", out)
	}
}

// TestParallelismMatchesSerial: the same plan executed with serial
// operators (Parallelism=1) and with partition-parallel operators must
// produce byte-identical results here because the output stage is an
// aggregation (the partitioned agg merges its partitions back into the
// serial operator's global key order) and the summed values are exact in
// float64. Plans that emit raw join output carry only a row-multiset
// guarantee: the parallel join emits partition-grouped row order.
func TestParallelismMatchesSerial(t *testing.T) {
	const nFact = 500
	tables := joinTables(nFact)
	serialCfg := DefaultConfig()
	serialCfg.Parallelism = 1
	wantOut, _ := runPlan(t, testCluster(t, 3, tables), joinPlan(), serialCfg)
	for _, p := range []int{2, 4} {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		cfg.CPUPerWorker = 4
		gotOut, rep := runPlan(t, testCluster(t, 3, tables), joinPlan(), cfg)
		if string(batch.Encode(gotOut)) != string(batch.Encode(wantOut)) {
			t.Errorf("Parallelism=%d differs from serial:\nwant %v\ngot  %v", p, wantOut, gotOut)
		}
		if rep.Metrics[metrics.PartitionTasks] == 0 {
			t.Errorf("Parallelism=%d: no partition tasks dispatched", p)
		}
	}
}
