package engine

import (
	"fmt"
	"strings"
	"time"

	"quokka/internal/trace"
)

// StageStats is one stage's actuals, aggregated from the query's flight
// recorder: what EXPLAIN ANALYZE annotates the plan with. Wall is the sum
// of task wall-clock across the stage's channels (tasks run in parallel,
// so Wall exceeds elapsed time on parallel stages — it measures work, not
// the critical path).
type StageStats struct {
	Stage        int
	Name         string
	Detail       string
	Parallelism  int
	Tasks        int64
	Replays      int64
	InRows       int64
	InBytes      int64
	OutRows      int64
	OutBytes     int64
	Wall         time.Duration
	SpillBytes   int64
	SpillRuns    int64
	SplitsPruned int // reader stages: splits zone-map pruning removed
}

// stageStats aggregates the recorder's task spans per stage. Returns nil
// when the query ran without tracing.
func (r *Runner) stageStats() []StageStats {
	if r.rec == nil {
		return nil
	}
	out := make([]StageStats, len(r.plan.Stages))
	for i, st := range r.plan.Stages {
		out[i] = StageStats{Stage: i, Name: st.Name, Detail: st.Detail, Parallelism: r.par[i]}
		if st.Reader != nil && st.Reader.Splits != nil && st.Reader.TotalSplits > 0 {
			out[i].SplitsPruned = st.Reader.TotalSplits - len(st.Reader.Splits)
		}
	}
	for _, s := range r.rec.Snapshot() {
		if s.Kind != trace.KindTask || s.Stage < 0 || s.Stage >= len(out) {
			continue
		}
		st := &out[s.Stage]
		st.Tasks++
		if s.Replay {
			st.Replays++
		}
		st.InRows += s.InRows
		st.InBytes += s.InBytes
		st.OutRows += s.OutRows
		st.OutBytes += s.OutBytes
		st.Wall += s.Dur
		st.SpillBytes += s.SpillBytes
		st.SpillRuns += s.SpillRuns
	}
	return out
}

// FormatStageStats renders the per-stage actuals as an aligned table —
// the ANALYZE half of EXPLAIN ANALYZE.
func FormatStageStats(stats []StageStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-14s %4s %5s %5s %12s %10s %12s %10s %10s %10s  %s\n",
		"id", "stage", "par", "tasks", "repl", "rows_in", "bytes_in", "rows_out", "bytes_out", "wall", "spill", "detail")
	for _, s := range stats {
		detail := s.Detail
		if s.SplitsPruned > 0 {
			detail += fmt.Sprintf(" [pruned %d splits]", s.SplitsPruned)
		}
		fmt.Fprintf(&b, "%-3d %-14s %4d %5d %5d %12d %10s %12d %10s %10s %10s  %s\n",
			s.Stage, s.Name, s.Parallelism, s.Tasks, s.Replays,
			s.InRows, fmtBytes(s.InBytes), s.OutRows, fmtBytes(s.OutBytes),
			s.Wall.Round(10*time.Microsecond), fmtBytes(s.SpillBytes), detail)
	}
	return b.String()
}

// fmtBytes renders a byte count compactly (B/KiB/MiB/GiB).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
