package quokka

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§V). These run reduced configurations so that
// `go test -bench=.` finishes in minutes; `cmd/quokka-bench` runs the
// full-size versions and prints the paper-style tables.

import (
	"io"
	"testing"

	"quokka/internal/bench"
)

// benchParams returns a reduced configuration for in-test benchmarks.
func benchParams() bench.Params {
	p := bench.DefaultParams(io.Discard)
	p.SF = 0.005
	p.SplitRows = 256
	p.TimeScale = 0.25
	return p
}

var benchHarness *bench.Harness

func harness(b *testing.B) *bench.Harness {
	b.Helper()
	if benchHarness == nil {
		benchHarness = bench.New(benchParams())
	}
	return benchHarness
}

// BenchmarkTable1 renders the fault-tolerance design matrix (Table I).
func BenchmarkTable1(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		h.Table1()
	}
}

// BenchmarkFig6 compares Quokka vs the SparkSQL- and Trino-like baselines
// on a representative query subset (Figure 6).
func BenchmarkFig6(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig6(4, []int{1, 3, 5, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 measures pipelined vs stagewise execution (Figure 7).
func BenchmarkFig7(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig7(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 measures dynamic vs static task dependencies (Figure 8).
func BenchmarkFig8(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig8(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 measures fault-tolerance overhead: spooling vs
// write-ahead lineage (Figure 9).
func BenchmarkFig9(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig9(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointAblation measures checkpointing overhead (§V-C).
func BenchmarkCheckpointAblation(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.CheckpointAblation(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10a measures recovery overhead with a worker killed at 50%
// (Figure 10a), on a reduced cluster.
func BenchmarkFig10a(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10a(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10b runs the TPC-H Q9 failure-point case study (Figure 10b).
func BenchmarkFig10b(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10b(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11a measures speedups on a wider cluster (Figure 11a,
// reduced from 32 to 16 workers for bench time).
func BenchmarkFig11a(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig6(16, []int{1, 3, 5, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b measures recovery overhead on the wider cluster
// (Figure 11b).
func BenchmarkFig11b(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10a(16); err != nil {
			b.Fatal(err)
		}
	}
}
