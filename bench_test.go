package quokka

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§V). These run reduced configurations so that
// `go test -bench=.` finishes in minutes; `cmd/quokka-bench` runs the
// full-size versions and prints the paper-style tables.

import (
	"io"
	"strconv"
	"testing"

	"quokka/internal/batch"
	"quokka/internal/bench"
	"quokka/internal/expr"
	"quokka/internal/ops"
)

// benchParams returns a reduced configuration for in-test benchmarks.
func benchParams() bench.Params {
	p := bench.DefaultParams(io.Discard)
	p.SF = 0.005
	p.SplitRows = 256
	p.TimeScale = 0.25
	return p
}

var benchHarness *bench.Harness

func harness(b *testing.B) *bench.Harness {
	b.Helper()
	if benchHarness == nil {
		benchHarness = bench.New(benchParams())
	}
	return benchHarness
}

// BenchmarkTable1 renders the fault-tolerance design matrix (Table I).
func BenchmarkTable1(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		h.Table1()
	}
}

// BenchmarkFig6 compares Quokka vs the SparkSQL- and Trino-like baselines
// on a representative query subset (Figure 6).
func BenchmarkFig6(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig6(4, []int{1, 3, 5, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 measures pipelined vs stagewise execution (Figure 7).
func BenchmarkFig7(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig7(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 measures dynamic vs static task dependencies (Figure 8).
func BenchmarkFig8(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig8(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 measures fault-tolerance overhead: spooling vs
// write-ahead lineage (Figure 9).
func BenchmarkFig9(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig9(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointAblation measures checkpointing overhead (§V-C).
func BenchmarkCheckpointAblation(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.CheckpointAblation(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10a measures recovery overhead with a worker killed at 50%
// (Figure 10a), on a reduced cluster.
func BenchmarkFig10a(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10a(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10b runs the TPC-H Q9 failure-point case study (Figure 10b).
func BenchmarkFig10b(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10b(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11a measures speedups on a wider cluster (Figure 11a,
// reduced from 32 to 16 workers for bench time).
func BenchmarkFig11a(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig6(16, []int{1, 3, 5, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b measures recovery overhead on the wider cluster
// (Figure 11b).
func BenchmarkFig11b(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping heavyweight figure benchmark in short mode (CI smoke)")
	}
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10a(16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Morsel-parallel operator benchmarks -------------------------------
//
// These measure the real (not cost-modelled) kernel speedup of partition-
// parallel hash join and hash aggregation: the same workload on the serial
// operator vs split into 4 hash partitions on a 4-slot CPU pool, the
// engine's configuration at CPUPerWorker=4.

func morselJoinData() (build, probe *batch.Batch) {
	const nBuild, nProbe = 100_000, 200_000
	bs := batch.NewSchema(batch.F("k", batch.Int64), batch.F("name", batch.String))
	bk := make([]int64, nBuild)
	bn := make([]string, nBuild)
	for i := range bk {
		bk[i] = int64(i)
		bn[i] = "name-" + strconv.Itoa(i%1000)
	}
	ps := batch.NewSchema(batch.F("k", batch.Int64), batch.F("v", batch.Float64))
	pk := make([]int64, nProbe)
	pv := make([]float64, nProbe)
	for i := range pk {
		pk[i] = int64(i % (nBuild * 2)) // half the probes miss
		pv[i] = float64(i)
	}
	build = batch.MustNew(bs, []*batch.Column{batch.NewIntColumn(bk), batch.NewStringColumn(bn)})
	probe = batch.MustNew(ps, []*batch.Column{batch.NewIntColumn(pk), batch.NewFloatColumn(pv)})
	return build, probe
}

func benchMorselJoin(b *testing.B, partitions int) {
	build, probe := morselJoinData()
	spec := ops.NewHashJoinSpec(ops.InnerJoin, []string{"k"}, []string{"k"}).(ops.ParallelSpec)
	pool := ops.NewPool(make(chan struct{}, 4), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := spec.NewParallel(0, 1, partitions, pool)
		if _, err := op.Consume(0, build); err != nil {
			b.Fatal(err)
		}
		out, err := op.Consume(1, probe)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for _, o := range out {
			rows += o.NumRows()
		}
		if rows != probe.NumRows()/2 {
			b.Fatalf("join rows = %d", rows)
		}
	}
}

// BenchmarkMorselJoinSerial is the single-threaded hash join baseline.
func BenchmarkMorselJoinSerial(b *testing.B) { benchMorselJoin(b, 1) }

// BenchmarkMorselJoinParallel4 runs the same join split into 4 hash
// partitions on 4 CPU slots; the acceptance bar is >= 1.5x the serial
// baseline on the same machine.
func BenchmarkMorselJoinParallel4(b *testing.B) { benchMorselJoin(b, 4) }

func benchMorselAgg(b *testing.B, partitions int) {
	const nRows, nGroups = 400_000, 100_000
	s := batch.NewSchema(batch.F("g", batch.Int64), batch.F("v", batch.Float64))
	gs := make([]int64, nRows)
	vs := make([]float64, nRows)
	for i := range gs {
		gs[i] = int64(i % nGroups)
		vs[i] = float64(i)
	}
	in := batch.MustNew(s, []*batch.Column{batch.NewIntColumn(gs), batch.NewFloatColumn(vs)})
	spec := ops.NewHashAggSpec([]string{"g"}, ops.Sum("s", expr.C("v")), ops.CountStar("c")).(ops.ParallelSpec)
	pool := ops.NewPool(make(chan struct{}, 4), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := spec.NewParallel(0, 1, partitions, pool)
		if _, err := op.Consume(0, in); err != nil {
			b.Fatal(err)
		}
		out, err := op.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 1 || out[0].NumRows() != nGroups {
			b.Fatalf("agg output: %v", out)
		}
	}
}

// BenchmarkMorselAggSerial is the single-threaded hash aggregation baseline.
func BenchmarkMorselAggSerial(b *testing.B) { benchMorselAgg(b, 1) }

// BenchmarkMorselAggParallel4 runs the same aggregation split into 4 hash
// partitions on 4 CPU slots.
func BenchmarkMorselAggParallel4(b *testing.B) { benchMorselAgg(b, 4) }

// --- Hash-path kernel benchmarks ---------------------------------------
//
// These measure the arena-backed vectorized hash path (open-addressing
// tables, hash-once key hashing) against a faithful replica of the
// map[string]-based kernels it replaced, on the serial operator
// (Parallelism=1). Run with -benchmem: the acceptance bar is >= 1.5x on
// grouped-agg and join-probe plus a large allocs/op drop. The replicas
// live in internal/bench so the comparison outlives the old code.

var hashPathWorkload *bench.HashPathWorkload

func hashPathData(b *testing.B) *bench.HashPathWorkload {
	b.Helper()
	if hashPathWorkload == nil {
		hashPathWorkload = bench.DefaultHashPathWorkload()
	}
	return hashPathWorkload
}

// BenchmarkHashPathAggMap is the pre-PR map-based grouped aggregation.
func BenchmarkHashPathAggMap(b *testing.B) {
	w := hashPathData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.RunMapAgg() != w.AggGroups {
			b.Fatal("bad group count")
		}
	}
}

// BenchmarkHashPathAggVector is the arena/open-addressing aggregation.
func BenchmarkHashPathAggVector(b *testing.B) {
	w := hashPathData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.RunVecAgg() != w.AggGroups {
			b.Fatal("bad group count")
		}
	}
}

// BenchmarkHashPathJoinMap is the pre-PR map-based join build+probe.
func BenchmarkHashPathJoinMap(b *testing.B) {
	w := hashPathData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.RunMapJoin() != w.ProbeRows/2 {
			b.Fatal("bad join rows")
		}
	}
}

// BenchmarkHashPathJoinVector is the arena/open-addressing join.
func BenchmarkHashPathJoinVector(b *testing.B) {
	w := hashPathData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.RunVecJoin() != w.ProbeRows/2 {
			b.Fatal("bad join rows")
		}
	}
}

// --- Engine-level morsel benchmarks ------------------------------------
//
// The ops-level benchmarks above need real cores; in the simulated engine,
// cores are the CPUPerWorker slots of the cost model, so the engine-level
// pair below demonstrates the multi-core speedup wherever it runs: the same
// TPC-H join/agg queries under bench.MorselConfig with serial operators
// (Parallelism=1) vs 4-way partitioned operators. Compare the two ns/op;
// `go run ./cmd/quokka-bench -exp morsel` prints the per-query table.

var morselHarness *bench.Harness

func engineMorselHarness(b *testing.B) *bench.Harness {
	b.Helper()
	if morselHarness == nil {
		p := bench.DefaultParams(io.Discard)
		p.SF = 0.02
		p.SplitRows = 2048
		p.TimeScale = 0.25
		morselHarness = bench.New(p)
	}
	return morselHarness
}

func benchEngineMorsel(b *testing.B, parallelism int) {
	h := engineMorselHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range []int{5, 9} {
			if _, err := h.RunQuery(4, q, bench.MorselConfig(parallelism)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineMorselSerial runs TPC-H Q5+Q9 with serial operators on
// 4-CPU workers: the claimed-mutex baseline the tentpole replaces.
func BenchmarkEngineMorselSerial(b *testing.B) { benchEngineMorsel(b, 1) }

// BenchmarkEngineMorselParallel4 runs the same queries with operators split
// into 4 hash/row-range partitions per channel.
func BenchmarkEngineMorselParallel4(b *testing.B) { benchEngineMorsel(b, 4) }
