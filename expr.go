package quokka

import (
	iexpr "quokka/internal/expr"
)

// Expr is a scalar expression over DataFrame columns. Build expressions
// from Col and literals, then combine with the fluent methods:
//
//	quokka.Col("price").Mul(quokka.LitF(1.1)).Gt(quokka.LitF(100))
type Expr struct {
	e iexpr.Expr
}

// Col references a column by name.
func Col(name string) Expr { return Expr{iexpr.C(name)} }

// LitI is an int64 literal.
func LitI(v int64) Expr { return Expr{iexpr.Int64(v)} }

// LitF is a float64 literal.
func LitF(v float64) Expr { return Expr{iexpr.Float64(v)} }

// LitS is a string literal.
func LitS(v string) Expr { return Expr{iexpr.Str(v)} }

// LitB is a bool literal.
func LitB(v bool) Expr { return Expr{iexpr.Boolean(v)} }

// LitDate is a calendar-date literal.
func LitDate(year, month, day int) Expr {
	return Expr{iexpr.DateLit(iexpr.DaysOfDate(year, month, day))}
}

// DateDays converts a calendar date to the engine's day-count
// representation, for use with CreateTable Date columns.
func DateDays(year, month, day int) int64 { return iexpr.DaysOfDate(year, month, day) }

// Arithmetic.

// Add returns e + o.
func (e Expr) Add(o Expr) Expr { return Expr{iexpr.Add(e.e, o.e)} }

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return Expr{iexpr.Sub(e.e, o.e)} }

// Mul returns e * o.
func (e Expr) Mul(o Expr) Expr { return Expr{iexpr.Mul(e.e, o.e)} }

// Div returns e / o (always float64).
func (e Expr) Div(o Expr) Expr { return Expr{iexpr.Div(e.e, o.e)} }

// Comparisons.

// Eq returns e = o.
func (e Expr) Eq(o Expr) Expr { return Expr{iexpr.Eq(e.e, o.e)} }

// Ne returns e != o.
func (e Expr) Ne(o Expr) Expr { return Expr{iexpr.Ne(e.e, o.e)} }

// Lt returns e < o.
func (e Expr) Lt(o Expr) Expr { return Expr{iexpr.Lt(e.e, o.e)} }

// Le returns e <= o.
func (e Expr) Le(o Expr) Expr { return Expr{iexpr.Le(e.e, o.e)} }

// Gt returns e > o.
func (e Expr) Gt(o Expr) Expr { return Expr{iexpr.Gt(e.e, o.e)} }

// Ge returns e >= o.
func (e Expr) Ge(o Expr) Expr { return Expr{iexpr.Ge(e.e, o.e)} }

// Between returns lo <= e <= hi.
func (e Expr) Between(lo, hi Expr) Expr { return Expr{iexpr.Between(e.e, lo.e, hi.e)} }

// Boolean logic.

// And returns the conjunction of e and the arguments.
func (e Expr) And(os ...Expr) Expr {
	args := []iexpr.Expr{e.e}
	for _, o := range os {
		args = append(args, o.e)
	}
	return Expr{iexpr.And(args...)}
}

// Or returns the disjunction of e and the arguments.
func (e Expr) Or(os ...Expr) Expr {
	args := []iexpr.Expr{e.e}
	for _, o := range os {
		args = append(args, o.e)
	}
	return Expr{iexpr.Or(args...)}
}

// Not negates a boolean expression.
func (e Expr) Not() Expr { return Expr{iexpr.Not{Of: e.e}} }

// Strings and dates.

// Like matches a %-wildcard pattern ("PROMO%", "%green%", ...).
func (e Expr) Like(pattern string) Expr { return Expr{iexpr.LikePat(e.e, pattern)} }

// InStrings tests membership in a string set.
func (e Expr) InStrings(set ...string) Expr { return Expr{iexpr.InStr(e.e, set...)} }

// InInts tests membership in an integer set.
func (e Expr) InInts(set ...int64) Expr { return Expr{iexpr.InInt(e.e, set...)} }

// Year extracts the calendar year of a Date expression.
func (e Expr) Year() Expr { return Expr{iexpr.Year(e.e)} }

// Substr returns the SQL substring (1-based start, given length).
func (e Expr) Substr(start, length int) Expr { return Expr{iexpr.Substring(e.e, start, length)} }

// IfElse returns CASE WHEN cond THEN e ELSE other END.
func IfElse(cond, then, other Expr) Expr {
	return Expr{iexpr.CaseWhen(other.e, iexpr.When{Cond: cond.e, Then: then.e})}
}
