// Package quokka is the public API of this repository: a distributed
// pipelined query engine with intra-query fault tolerance via write-ahead
// lineage, reproducing "Efficient Fault Tolerance for Pipelined Query
// Engines via Write-ahead Lineage" (ICDE 2024).
//
// The package exposes:
//
//   - Cluster: a simulated worker fleet with killable workers, per-worker
//     NVMe disks and Flight mailboxes, a durable object store, and a
//     transactional global control store (GCS).
//   - Session / DataFrame: a Spark/Polars-style lazy DataFrame API that
//     builds a logical plan, optimized at Collect (predicate pushdown,
//     projection pruning, operator fusion, broadcast-join selection) and
//     lowered to the engine's pipelined physical plans; Explain shows
//     the optimized plan.
//   - Query / Cursor: Submit returns a per-query handle immediately; any
//     number of queries run concurrently on one cluster (bounded by the
//     admission controller, FIFO beyond the bound), stream results
//     through pull-based cursors with backpressure, and cancel cleanly
//     without disturbing each other. Collect is Submit + Result.
//   - RunConfig: execution / fault-tolerance / recovery knobs, with
//     presets for the paper's three systems (Quokka, SparkSQL-like,
//     Trino-like).
//   - TPC-H: the full deterministic data generator and all 22 query
//     plans used by the paper's evaluation.
//
// Quickstart:
//
//	cl, _ := quokka.NewCluster(quokka.ClusterConfig{Workers: 4})
//	quokka.LoadTPCH(cl, 0.01, 0)
//	res, _ := quokka.RunTPCH(context.Background(), cl, 6, quokka.DefaultConfig())
//	fmt.Println(res)
package quokka

import (
	"fmt"
	"time"

	"quokka/internal/batch"
	"quokka/internal/cluster"
	"quokka/internal/engine"
	"quokka/internal/storage"
	"quokka/internal/wire"
)

// RunConfig controls one query execution: pipelined vs stagewise
// scheduling, dynamic vs static task dependencies, the fault-tolerance
// strategy and the recovery placement policy.
type RunConfig = engine.Config

// Re-exported configuration presets matching the paper's three systems.
var (
	// DefaultConfig is the paper's Quokka: dynamic pipelined execution,
	// write-ahead lineage, pipeline-parallel recovery.
	DefaultConfig = engine.DefaultConfig
	// SparkLikeConfig is the SparkSQL stand-in: stagewise execution,
	// lineage + upstream backup, data-parallel recovery.
	SparkLikeConfig = engine.SparkConfig
	// TrinoLikeConfig is the Trino stand-in: static pipelined execution
	// with durable HDFS spooling.
	TrinoLikeConfig = engine.TrinoConfig
)

// FTMode selects the fault-tolerance strategy.
type FTMode = engine.FTMode

// Fault-tolerance modes (RunConfig.FT).
const (
	FTNone              = engine.FTNone
	FTWriteAheadLineage = engine.FTWriteAheadLineage
	FTSpool             = engine.FTSpool
	FTCheckpoint        = engine.FTCheckpoint
)

// Execution modes (RunConfig.Execution).
const (
	Pipelined = engine.Pipelined
	Stagewise = engine.Stagewise
)

// Recovery modes (RunConfig.Recovery).
const (
	RecoveryPipelineParallel = engine.RecoveryPipelineParallel
	RecoveryDataParallel     = engine.RecoveryDataParallel
)

// Option is a cluster-level tuning knob, passed to NewCluster, NewSession
// or Cluster.Configure. Options tune the execution state shared by every
// query on one cluster — admission, cross-query memory, and the defaults a
// query's RunConfig falls back to — whereas RunConfig tunes one execution.
type Option = engine.Option

// WithAdmissionLimit bounds how many queries the cluster executes
// concurrently (default 4). Submissions beyond the bound queue FIFO and
// are admitted as slots free up; n <= 0 restores the default. Raising the
// limit immediately admits queued queries.
func WithAdmissionLimit(n int) Option { return engine.WithAdmissionLimit(n) }

// WithWorkerMemoryBudget installs a per-worker accounted-memory cap shared
// by ALL in-flight queries: concurrent budgeted queries then spill against
// the worker's total accounted operator state, not just their own
// RunConfig.MemoryBudget. 0 (the default) disables the cross-query cap.
// Only queries submitted after it is applied observe it.
func WithWorkerMemoryBudget(bytes int64) Option { return engine.WithWorkerMemoryBudget(bytes) }

// WithCursorBufferBytes sets the cluster default for the head-node buffer
// bound while a streaming Cursor is attached. A query's own
// RunConfig.CursorBufferBytes, when set, takes precedence. 0 restores the
// built-in default (4 MiB); negative disables the bound.
func WithCursorBufferBytes(n int64) Option { return engine.WithCursorBufferBytes(n) }

// WithLineageFlushInterval sets the cluster default for lineage group
// commit. A query's own RunConfig.LineageFlushInterval, when set, takes
// precedence. 0 restores the default opportunistic batching; a positive
// interval holds each flush open that long to widen batches; negative
// disables group commit (one GCS transaction per task, the pre-group-commit
// behaviour).
func WithLineageFlushInterval(d time.Duration) Option {
	return engine.WithLineageFlushInterval(d)
}

// WithShuffleCompression selects the compressed (QBA2) codec for shuffle
// partitions, result spools and replay backups (true, the default) or the
// raw encoding-0 format (false) — the escape hatch for debugging wire
// bytes. Compression is output-transparent: decoded batches are
// byte-identical either way, so results, lineage replay and routing are
// unaffected. Only queries submitted after the call observe the change.
func WithShuffleCompression(on bool) Option { return engine.WithShuffleCompression(on) }

// WithSpillCompression selects the compressed (QBA2) codec for spill run
// files (true, the default) or raw encoding-0 frames (false). Same
// transparency contract as WithShuffleCompression. Only queries submitted
// after the call observe the change.
func WithSpillCompression(on bool) Option { return engine.WithSpillCompression(on) }

// WithListenAddr switches a cluster into process mode: the head serves
// its control plane — GCS transactions, flight mailboxes, the object
// store and the result sink — to quokka-worker processes over TCP on the
// given address (":0" picks an ephemeral port; see Cluster.WireAddr).
// Queries then execute on attached worker processes instead of local
// goroutines. Empty (the default) keeps the cluster fully in-memory.
//
// Experimental: the wire protocol and this option's shape may change.
func WithListenAddr(addr string) Option { return engine.WithListenAddr(addr) }

// WithTransport selects the wire transport implementation for process
// mode. "tcp" (the default) is length-prefixed framing over plain TCP;
// the name exists so alternative transports can be added without an API
// change. Ignored without WithListenAddr.
//
// Experimental: the wire protocol and this option's shape may change.
func WithTransport(name string) Option { return engine.WithTransport(name) }

// WithTracing enables the per-query flight recorder (off by default).
// Traced queries record a structured span for every unit of work — task
// executions, partition pushes, lineage flushes, admission waits, recovery
// rewinds and replays — surfaced through Query.Trace (Chrome trace-event
// export), Query.Stats and Result.ExplainAnalyze. Tracing only observes:
// results are byte-identical with it on or off, and a disabled recorder
// costs nothing on the task hot path. Only queries submitted after the
// call observe the change.
func WithTracing(on bool) Option { return engine.WithTracing(on) }

// ClusterConfig configures cluster construction.
type ClusterConfig struct {
	// Workers is the number of simulated worker machines.
	Workers int
	// TimeScale scales the simulated I/O service times. 0 uses the
	// calibrated default (suitable for benchmarks); negative disables
	// I/O cost simulation entirely (fastest, for tests).
	TimeScale float64
	// HDFSObjectStore selects the HDFS cost profile for the shared object
	// store instead of S3.
	HDFSObjectStore bool
}

// Cluster is a simulated cluster: workers (killable at any time), the
// durable object store holding input tables, the head-node GCS, and the
// metrics collector. In process mode (WithListenAddr) it additionally
// runs the head's wire server, and the workers are real OS processes.
type Cluster struct {
	inner *cluster.Cluster
	wire  *wire.Server // non-nil in process mode
}

// NewCluster builds a cluster of cfg.Workers live workers and applies any
// cluster-level tuning options (see Option). With WithListenAddr among
// the options, the cluster comes up in process mode: the head's wire
// server is started and queries wait for quokka-worker processes (spawn
// with SpawnWorker or attach externally; see AwaitWorkers).
func NewCluster(cfg ClusterConfig, opts ...Option) (*Cluster, error) {
	cost := storage.DefaultCostModel()
	switch {
	case cfg.TimeScale > 0:
		cost.TimeScale = cfg.TimeScale
	case cfg.TimeScale < 0:
		cost.TimeScale = 0
	}
	profile := storage.ProfileS3
	if cfg.HDFSObjectStore {
		profile = storage.ProfileHDFS
	}
	inner, err := cluster.New(cluster.Options{
		Workers: cfg.Workers,
		Cost:    cost,
		Profile: profile,
	})
	if err != nil {
		return nil, err
	}
	engine.Configure(inner, opts...)
	c := &Cluster{inner: inner}
	if addr := engine.ListenAddr(inner); addr != "" {
		if name := engine.TransportName(inner); name != engine.DefaultTransport {
			return nil, fmt.Errorf("quokka: unknown wire transport %q (have %q)", name, engine.DefaultTransport)
		}
		srv, err := wire.NewServer(inner, addr)
		if err != nil {
			return nil, err
		}
		engine.SetRemoteExec(inner, srv)
		c.wire = srv
	}
	return c, nil
}

// WireAddr returns the head's wire listen address in process mode (with
// the resolved port when WithListenAddr(":0") was used), "" otherwise.
func (c *Cluster) WireAddr() string {
	if c.wire == nil {
		return ""
	}
	return c.wire.Addr()
}

// SpawnWorker launches a quokka-worker process from the given binary for
// worker id, attached to this cluster's head. slots caps its task-manager
// threads per query and memBudget its accounted operator memory (0 keeps
// each query's own setting); spillDir backs its local disk. KillWorker on
// a spawned worker delivers a real SIGKILL to the process.
//
// Experimental: process-mode surface, may change.
func (c *Cluster) SpawnWorker(bin string, id, slots int, memBudget int64, spillDir string) error {
	if c.wire == nil {
		return fmt.Errorf("quokka: SpawnWorker needs process mode (WithListenAddr)")
	}
	return c.wire.Spawn(bin, id, slots, memBudget, spillDir)
}

// AwaitWorkers blocks until n worker processes are attached to the head,
// or the timeout expires.
//
// Experimental: process-mode surface, may change.
func (c *Cluster) AwaitWorkers(n int, timeout time.Duration) error {
	if c.wire == nil {
		return fmt.Errorf("quokka: AwaitWorkers needs process mode (WithListenAddr)")
	}
	return c.wire.AwaitWorkers(n, timeout)
}

// Close shuts the cluster down. In process mode it stops the wire server
// and kills every spawned worker process; for an in-memory cluster it is
// a no-op. Safe to call more than once.
func (c *Cluster) Close() {
	if c.wire != nil {
		c.wire.Close()
	}
}

// Configure applies cluster-level tuning options to a live cluster. It may
// be called at any time; each option documents whether in-flight queries
// observe the change.
func (c *Cluster) Configure(opts ...Option) { engine.Configure(c.inner, opts...) }

// Workers returns the total number of workers (live or dead).
func (c *Cluster) Workers() int { return len(c.inner.Workers) }

// AliveWorkers returns the number of live workers.
func (c *Cluster) AliveWorkers() int { return c.inner.AliveCount() }

// KillWorker simulates worker i failing: its in-flight tasks, shuffle
// mailbox and local disk are lost, exactly like a spot pre-emption.
func (c *Cluster) KillWorker(i int) error {
	if i < 0 || i >= len(c.inner.Workers) {
		return fmt.Errorf("quokka: no worker %d", i)
	}
	c.inner.Worker(cluster.WorkerID(i)).Kill()
	return nil
}

// Metrics returns a snapshot of the cluster's counters (bytes shuffled,
// backed up, spooled, GCS transactions, tasks executed/replayed, ...).
func (c *Cluster) Metrics() map[string]int64 { return c.inner.Metrics.Snapshot() }

// SetAdmissionLimit bounds how many queries the cluster executes
// concurrently (default engine.DefaultAdmissionLimit = 4). Submissions
// beyond the bound queue FIFO and are admitted as slots free up. n <= 0
// restores the default.
//
// Deprecated: use Configure(WithAdmissionLimit(n)).
func (c *Cluster) SetAdmissionLimit(n int) { c.Configure(WithAdmissionLimit(n)) }

// SetWorkerMemoryBudget installs a per-worker accounted-memory cap shared
// by ALL in-flight queries: concurrent budgeted queries then spill against
// the worker's total accounted operator state, not just their own
// RunConfig.MemoryBudget. 0 (the default) disables the cross-query cap.
// Only queries submitted after the call observe it.
//
// Deprecated: use Configure(WithWorkerMemoryBudget(bytes)).
func (c *Cluster) SetWorkerMemoryBudget(bytes int64) {
	c.Configure(WithWorkerMemoryBudget(bytes))
}

// Internal accessor for the benchmark harness.
func (c *Cluster) internalCluster() *cluster.Cluster { return c.inner }

// ColumnType enumerates the supported table column types.
type ColumnType = batch.Type

// Supported column types for CreateTable.
const (
	Int64   = batch.Int64
	Float64 = batch.Float64
	String  = batch.String
	Bool    = batch.Bool
	Date    = batch.Date
)

// ColumnDef defines one column of a user table.
type ColumnDef struct {
	Name string
	Type ColumnType
}

// CreateTable ingests rows into the cluster's object store as a named
// table, split into splitRows-row splits (default 1024). Row values must
// match the declared column types (int64, float64, string, bool; Date
// columns take int64 days since the Unix epoch).
func (c *Cluster) CreateTable(name string, cols []ColumnDef, rows [][]any, splitRows int) error {
	if splitRows <= 0 {
		splitRows = 1024
	}
	fields := make([]batch.Field, len(cols))
	for i, cd := range cols {
		fields[i] = batch.Field{Name: cd.Name, Type: cd.Type}
	}
	schema := batch.NewSchema(fields...)
	bl := batch.NewBuilder(schema, len(rows))
	for ri, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("quokka: row %d has %d values, want %d", ri, len(row), len(cols))
		}
		for ci, v := range row {
			col := bl.Col(ci)
			var ok bool
			switch cols[ci].Type {
			case batch.Int64, batch.Date:
				var x int64
				x, ok = toInt64(v)
				if ok {
					col.Ints = append(col.Ints, x)
				}
			case batch.Float64:
				var x float64
				x, ok = toFloat64(v)
				if ok {
					col.Floats = append(col.Floats, x)
				}
			case batch.String:
				var x string
				x, ok = v.(string)
				if ok {
					col.Strings = append(col.Strings, x)
				}
			case batch.Bool:
				var x bool
				x, ok = v.(bool)
				if ok {
					col.Bools = append(col.Bools, x)
				}
			}
			if !ok {
				return fmt.Errorf("quokka: row %d column %q: value %v (%T) does not match type %s",
					ri, cols[ci].Name, v, v, cols[ci].Type)
			}
		}
	}
	b := bl.Build()
	splits := b.SplitRows(splitRows)
	if splits == nil {
		splits = []*batch.Batch{b}
	}
	engine.WriteTable(c.inner.ObjStore, name, splits)
	return nil
}

func toInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	}
	return 0, false
}

func toFloat64(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}
