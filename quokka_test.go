package quokka

import (
	"context"
	"testing"
	"time"

	"quokka/internal/metrics"
)

func newTestCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Workers: workers, TimeScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func salesTable(t *testing.T, c *Cluster, n int) {
	t.Helper()
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 7), float64(i) * 1.5, i%2 == 0}
	}
	err := c.CreateTable("sales", []ColumnDef{
		{Name: "id", Type: Int64},
		{Name: "region", Type: Int64},
		{Name: "amount", Type: Float64},
		{Name: "online", Type: Bool},
	}, rows, 64)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDataFrameGroupBy(t *testing.T) {
	c := newTestCluster(t, 3)
	salesTable(t, c, 700)
	sess := NewSession(c)
	res, err := sess.Read("sales").
		Filter(Col("online").Eq(LitB(true))).
		GroupBy([]string{"region"}, SumOf("total", Col("amount")), CountAll("n")).
		Sort(0, Desc("total")).
		Collect(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7: %s", res.NumRows(), res)
	}
	var total int64
	for _, row := range res.Rows() {
		total += row[2].(int64)
	}
	if total != 350 {
		t.Errorf("online rows = %d, want 350", total)
	}
	// Sorted descending by total.
	rows := res.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i][1].(float64) > rows[i-1][1].(float64) {
			t.Errorf("not sorted at row %d", i)
		}
	}
}

func TestDataFrameJoin(t *testing.T) {
	c := newTestCluster(t, 2)
	salesTable(t, c, 140)
	if err := c.CreateTable("regions", []ColumnDef{
		{Name: "rid", Type: Int64},
		{Name: "rname", Type: String},
	}, [][]any{
		{int64(0), "north"}, {int64(1), "south"}, {int64(2), "east"},
		{int64(3), "west"}, {int64(4), "up"}, {int64(5), "down"}, {int64(6), "strange"},
	}, 0); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c)
	regions := sess.Read("regions")
	res, err := sess.Read("sales").
		BroadcastJoin(regions, Inner, []string{"region"}, []string{"rid"}).
		GroupBy([]string{"rname"}, CountAll("n")).
		Sort(0, Asc("rname")).
		Collect(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Fatalf("rows = %d: %s", res.NumRows(), res)
	}
	if res.Columns()[0] != "rname" {
		t.Errorf("columns = %v", res.Columns())
	}
	if got := res.Rows()[0][1].(int64); got != 20 {
		t.Errorf("first region count = %d, want 20", got)
	}
}

func TestJoinScalar(t *testing.T) {
	c := newTestCluster(t, 2)
	salesTable(t, c, 100)
	sess := NewSession(c)
	sales := sess.Read("sales")
	avg := sales.GroupBy(nil, SumOf("s", Col("amount")), CountAll("n"))
	res, err := sales.
		JoinScalar(avg,
			[]Named{As("id", Col("id")), As("amount", Col("amount"))},
			[]Named{As("avg_amount", Col("s").Div(Col("n")))}).
		Filter(Col("amount").Gt(Col("avg_amount"))).
		GroupBy(nil, CountAll("above")).
		Collect(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// amounts are 0..148.5 rising linearly; about half are above average.
	got := res.Rows()[0][0].(int64)
	if got < 45 || got > 55 {
		t.Errorf("above-average count = %d", got)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	c := newTestCluster(t, 4)
	salesTable(t, c, 4000)
	go func() {
		for c.inner.Metrics.Get(metrics.TasksExecuted) < 5 {
			time.Sleep(100 * time.Microsecond)
		}
		c.KillWorker(2)
	}()
	sess := NewSession(c)
	res, err := sess.Read("sales").
		GroupBy([]string{"region"}, SumOf("total", Col("amount"))).
		Sort(0, Asc("region")).
		Collect(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if c.AliveWorkers() != 3 {
		t.Errorf("alive = %d", c.AliveWorkers())
	}
}

func TestTPCHPublicAPI(t *testing.T) {
	c := newTestCluster(t, 3)
	LoadTPCH(c, 0.002, 256)
	res, err := RunTPCH(context.Background(), c, 6, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Columns()[0] != "revenue" {
		t.Fatalf("q6: %s", res)
	}
	if len(TPCHQueries()) != 22 || len(TPCHRepresentative()) != 8 {
		t.Error("query lists wrong")
	}
	if res.Duration() <= 0 || res.TasksExecuted() == 0 {
		t.Error("report not populated")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	cols := []ColumnDef{{Name: "a", Type: Int64}}
	if err := c.CreateTable("t", cols, [][]any{{1, 2}}, 0); err == nil {
		t.Error("want arity error")
	}
	if err := c.CreateTable("t", cols, [][]any{{"x"}}, 0); err == nil {
		t.Error("want type error")
	}
	if err := c.CreateTable("t", cols, [][]any{{int(3)}, {int64(4)}, {int32(5)}}, 0); err != nil {
		t.Errorf("int conversions should work: %v", err)
	}
}

func TestKillWorkerBounds(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.KillWorker(5); err == nil {
		t.Error("want error for bad worker index")
	}
	if err := c.KillWorker(0); err != nil {
		t.Error(err)
	}
	if c.Workers() != 2 || c.AliveWorkers() != 1 {
		t.Error("worker counts wrong")
	}
}

func TestSessionCompileErrors(t *testing.T) {
	c := newTestCluster(t, 1)
	salesTable(t, c, 10)
	sess := NewSession(c)
	a := sess.Read("sales")
	b := sess.Read("sales")
	// Joining mid-frames leaves 'a' dangling only if collected from it;
	// collecting from a valid sink works even with extra session frames.
	j := a.BroadcastJoin(b.GroupBy(nil, CountAll("n")).Select(As("one2", LitI(1)), As("n", Col("n"))),
		Inner, []string{"one3"}, []string{"one2"})
	_ = j
	// Collect from a frame whose upstream is fine.
	res, err := a.GroupBy(nil, CountAll("n")).Collect(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0].(int64) != 10 {
		t.Errorf("count = %v", res.Rows()[0][0])
	}
}
